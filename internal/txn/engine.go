// Package txn is the transactional storage manager: it glues the lock
// manager, the storage engine and the Aether log into ACID transactions
// with every commit strategy the paper studies — synchronous (baseline),
// synchronous with Early Lock Release, unsafe asynchronous commit, and
// Flush Pipelining.
//
// The package plays the role Shore-MT plays in the paper: the substrate
// whose transactions exercise the log.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/metrics"
	"aether/internal/storage"
)

// Errors returned by transaction operations.
var (
	// ErrDuplicateKey is returned by Insert for an existing key.
	ErrDuplicateKey = errors.New("txn: duplicate key")
	// ErrKeyNotFound is returned when a key does not exist.
	ErrKeyNotFound = errors.New("txn: key not found")
	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
	// ErrPrecommitted guards the ELR safety rule: a transaction whose
	// commit record is in the log may not abort (paper §3.1 condition 2).
	ErrPrecommitted = errors.New("txn: cannot abort a precommitted transaction")
)

// CommitMode selects the commit protocol.
type CommitMode int

const (
	// CommitSync is the traditional protocol: flush the commit record,
	// wait for durability, then release locks. The agent thread blocks
	// (delays A, B and C from Figure 1).
	CommitSync CommitMode = iota
	// CommitSyncELR releases locks immediately after inserting the
	// commit record, then waits for durability before replying (§3).
	// Removes delay B; the agent still blocks (A, C remain).
	CommitSyncELR
	// CommitAsync releases locks and reports success without waiting
	// for durability — the unsafe "asynchronous commit" of Oracle and
	// PostgreSQL the paper compares against. Committed work can be lost
	// in a crash.
	CommitAsync
	// CommitPipelined is flush pipelining with ELR (§4): locks release
	// at insert, the agent detaches, and the completion callback fires
	// from the log daemon once the commit record hardens. Safe, and the
	// agent never blocks.
	CommitPipelined
	// CommitPipelinedHoldLocks is an ablation: flush pipelining without
	// early lock release — locks are released only when the commit
	// record hardens. Shows why pipelining depends on ELR (§6.4).
	CommitPipelinedHoldLocks
)

var commitModeNames = map[CommitMode]string{
	CommitSync:               "sync",
	CommitSyncELR:            "sync+elr",
	CommitAsync:              "async",
	CommitPipelined:          "pipelined",
	CommitPipelinedHoldLocks: "pipelined-no-elr",
}

// String names the mode as used in experiment output.
func (m CommitMode) String() string {
	if s, ok := commitModeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// DefaultKeyOf extracts a row's key assuming the row starts with the key
// encoded as 8 little-endian bytes — the convention all built-in
// workloads follow. Index rebuild at restart depends on it.
func DefaultKeyOf(row []byte) uint64 {
	if len(row) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(row[:8])
}

// Table is one logical table: a logged heap plus a volatile primary
// index (rebuilt at restart from the heap).
type Table struct {
	// Name is the table's registered name.
	Name string
	// Space is the page space (top 24 bits of every page ID) the
	// table's heap allocates from.
	Space uint32
	// Heap holds the table's rows.
	Heap *storage.HeapFile
	// Index is the volatile primary index over Heap.
	Index *storage.BTree
	// KeyOf recovers a row's primary key during index rebuild.
	KeyOf func([]byte) uint64
}

// Config assembles an Engine.
type Config struct {
	// Log is the Aether log manager (required unless Multi is set).
	Log *core.LogManager
	// Multi, if set, runs the engine in partitioned (multi-log) mode
	// over the coordinator's N per-partition log managers instead of
	// Log. Page stamps, DPT recLSNs, checkpoint ATT entries and the
	// truncation horizon all become global seqs; commit waits go to
	// each transaction's home partition.
	Multi *core.MultiLog
	// Route picks a transaction's home partition in multi-log mode,
	// given the transaction ID and the page space of its first logged
	// update. Nil defaults to space modulo partition count, which keeps
	// table-partitioned workloads log-local. Must be pure and
	// goroutine-safe.
	Route func(txnID uint64, space uint32) int
	// Locks is the lock manager (required).
	Locks *lockmgr.Manager
	// Store is the page store; NewEngine wires Archive and Log into it
	// as the buffer pool's backend and WAL hook (required).
	Store *storage.Store
	// Archive, if set, receives page images at checkpoints (the
	// simulated database file).
	Archive storage.Archive
	// CheckpointEveryBytes, if > 0, starts the background incremental
	// checkpointer: a goroutine that takes a fuzzy checkpoint (sweep,
	// truncation and all) every time roughly this many bytes have been
	// appended to the log — so the log stays bounded with zero client
	// Checkpoint calls and zero commit-path stalls. Stop it with Close.
	CheckpointEveryBytes int64
	// CleanerPages, if > 0, starts the background page cleaner: a
	// goroutine that watches the buffer pool's free-frame headroom and
	// pre-cleans dirty, unpinned, cold pages — forcing the log, then
	// batching the images through the archive's double-write journal —
	// whenever fewer than this many frames are free or clean. Faults
	// then find clean victims and eviction is a frame drop instead of a
	// demand steal. Meaningful only with a bounded Store (SetCachePages)
	// over an Archive backend; harmless otherwise. Stop it with Close.
	CleanerPages int
	// CleanerInterval is the cleaner's polling cadence (default 2ms).
	// Demand steals additionally nudge it awake immediately, so the
	// interval only bounds how stale the headroom view can get between
	// bursts.
	CleanerInterval time.Duration
	// PrefetchDepth, if > 0, enables sequential read-ahead in the buffer
	// pool: when faults form a sequential run (a scan, the restart
	// rebuild), up to this many pages are read from the archive ahead of
	// demand, concurrently, so the scan's faults become cache hits.
	// Prefetched frames are charged against the cache budget but never
	// evict dirty pages. Meaningful only with an Archive backend.
	PrefetchDepth int
	// Retention, if it has lanes, starts the cloud-tier maintenance
	// daemon: pack compaction, snapshot cutting and retention pruning
	// against each lane's remote archiver. Stop it with Close.
	Retention RetentionConfig
}

// Stats exposes engine counters.
type Stats struct {
	// Commits counts committed transactions.
	Commits metrics.Counter
	// Aborts counts aborted transactions.
	Aborts metrics.Counter
	// ReadOnly counts read-only commits (no log flush needed).
	ReadOnly metrics.Counter
	// Checkpoints counts completed fuzzy checkpoints.
	Checkpoints metrics.Counter
	// TruncateFailures counts checkpoints whose (best-effort) log
	// truncation failed; the horizon stays put until the next one.
	TruncateFailures metrics.Counter
	// AutoCheckpoints counts checkpoints taken by the background
	// incremental checkpointer (a subset of Checkpoints).
	AutoCheckpoints metrics.Counter
	// AutoCheckpointFailures counts background checkpoints that errored
	// (e.g. the log closed mid-checkpoint during shutdown).
	AutoCheckpointFailures metrics.Counter
	// Sweeps counts page-cleaning sweeps that wrote at least one page.
	Sweeps metrics.Counter
	// SweepPages counts page images written by checkpoint sweeps.
	SweepPages metrics.Counter
	// SweepFsyncs counts device fsyncs charged to checkpoint sweeps —
	// O(1) per sweep on a batched archive, O(pages) on the legacy one.
	SweepFsyncs metrics.Counter
	// SweepDuration records wall-clock time per page-cleaning sweep.
	SweepDuration metrics.Histogram
	// SegmentsArchived counts dead log segments the background archiver
	// shipped to cold storage before recycling their slots.
	SegmentsArchived metrics.Counter
	// ArchiveFailures counts background archive passes that errored
	// (cold storage down); the affected segments stay pending on disk.
	ArchiveFailures metrics.Counter
	// ArchiveRetries counts backoff retries of a failed archive pass:
	// transient cold-store outages are retried in-loop with bounded
	// exponential backoff + jitter before the archiver gives up.
	ArchiveRetries metrics.Counter
	// ArchiveGaveUp counts archive passes abandoned after the retry
	// budget was exhausted. The segments stay parked on disk; the next
	// nudge (any later truncation, restore, or Close-side drain) tries
	// again, so nothing is lost — only delayed.
	ArchiveGaveUp metrics.Counter
	// CleanerFailures counts background cleaner passes that errored (log
	// force or archive writeback failed); the affected pages stay dirty
	// and the next pass — or a demand steal, or the sweep — retries.
	CleanerFailures metrics.Counter
	// SnapshotsTaken counts materialized snapshot objects the cloud-tier
	// maintenance daemon uploaded to the remote store.
	SnapshotsTaken metrics.Counter
	// RetentionPrunedObjects counts remote objects (snapshots, raw
	// segments and packs) deleted by retention — always wholly below
	// the oldest retained snapshot's cut.
	RetentionPrunedObjects metrics.Counter
	// RetentionFailures counts maintenance passes that errored
	// (compaction, snapshotting or pruning); nothing is lost — the
	// next nudge retries with the floor unchanged.
	RetentionFailures metrics.Counter
}

// Engine is the transactional storage manager.
type Engine struct {
	log     *core.LogManager // nil in multi-log mode
	multi   *core.MultiLog   // nil in single-log mode
	route   func(txnID uint64, space uint32) int
	locks   *lockmgr.Manager
	store   *storage.Store
	archive storage.Archive
	stats   Stats

	mu        sync.Mutex
	tables    map[string]*Table
	spaces    map[uint32]*Table
	nextSpace uint32
	att       map[uint64]*Txn // active-transaction table for checkpoints

	nextTxn atomic.Uint64

	ckptMu sync.Mutex
	ckptAp *core.Appender

	// Background incremental checkpointer (nil channels when disabled).
	ckptTrig chan struct{}
	ckptStop chan struct{}
	ckptDone chan struct{}

	// Background segment archiver (nil channels when the log device has
	// no archiver attached).
	archTrig chan struct{}
	archStop chan struct{}
	archDone chan struct{}

	// Background page cleaner (nil channels when disabled).
	cleanTrig chan struct{}
	cleanStop chan struct{}
	cleanDone chan struct{}

	// Background cloud-tier maintenance daemon (nil channels when no
	// remote lanes are configured).
	retCfg  RetentionConfig
	retTrig chan struct{}
	retStop chan struct{}
	retDone chan struct{}

	closeOnce sync.Once
}

// NewEngine builds an engine over the given components.
func NewEngine(cfg Config) (*Engine, error) {
	if (cfg.Log == nil && cfg.Multi == nil) || cfg.Locks == nil || cfg.Store == nil {
		return nil, errors.New("txn: Log (or Multi), Locks and Store are required")
	}
	if cfg.Log != nil && cfg.Multi != nil {
		return nil, errors.New("txn: Log and Multi are mutually exclusive")
	}
	e := &Engine{
		log:     cfg.Log,
		multi:   cfg.Multi,
		route:   cfg.Route,
		locks:   cfg.Locks,
		store:   cfg.Store,
		archive: cfg.Archive,
		tables:  make(map[string]*Table),
		spaces:  make(map[uint32]*Table),
		att:     make(map[uint64]*Txn),
	}
	if cfg.Multi != nil && e.route == nil {
		n := cfg.Multi.NumParts()
		e.route = func(_ uint64, space uint32) int { return int(space) % n }
	}
	if cfg.Log != nil {
		e.ckptAp = cfg.Log.NewAppender()
	}
	// Thread the WAL into the buffer pool: evicting a dirty page forces
	// the log up to its pageLSN before the image may be stolen to the
	// archive, and faulted images are checked against the durable
	// horizon. (Restart wires the same hooks before recovery; repeating
	// them here is idempotent and covers directly constructed engines.)
	if cfg.Archive != nil {
		if err := cfg.Store.SetBackend(cfg.Archive); err != nil {
			return nil, err
		}
	}
	if cfg.Multi != nil {
		cfg.Store.AttachWAL(cfg.Multi)
	} else {
		cfg.Store.AttachWAL(cfg.Log)
	}
	if cfg.PrefetchDepth > 0 {
		cfg.Store.SetPrefetch(cfg.PrefetchDepth)
	}
	if cfg.CheckpointEveryBytes > 0 {
		e.startAutoCheckpoint(cfg.CheckpointEveryBytes)
	}
	if e.canArchive() {
		e.startArchiver()
	}
	if cfg.CleanerPages > 0 {
		e.startCleaner(cfg.CleanerPages, cfg.CleanerInterval)
	}
	if len(cfg.Retention.Lanes) > 0 {
		e.startRetention(cfg.Retention)
	}
	return e, nil
}

// durableStamp returns the durable horizon in the engine's stamp
// domain: the log's durable LSN in single-log mode, the global durable
// seq in multi-log mode.
func (e *Engine) durableStamp() lsn.LSN {
	if e.multi != nil {
		return e.multi.Durable()
	}
	return e.log.Durable()
}

// waitLM returns the log manager a transaction homed on partition
// `home` waits on (the single log when not partitioned; home < 0 maps
// to partition 0, the system log).
func (e *Engine) waitLM(home int) *core.LogManager {
	if e.multi == nil {
		return e.log
	}
	if home < 0 {
		home = 0
	}
	return e.multi.Part(home)
}

// canArchive reports whether any log device has an archiver attached.
func (e *Engine) canArchive() bool {
	if e.multi != nil {
		for i := 0; i < e.multi.NumParts(); i++ {
			if e.multi.Part(i).CanArchive() {
				return true
			}
		}
		return false
	}
	return e.log.CanArchive()
}

// archivePending drains every log device's archive-then-recycle queue,
// returning the total segments shipped and the first error.
func (e *Engine) archivePending() (int, error) {
	if e.multi == nil {
		return e.log.ArchivePending()
	}
	total := 0
	var first error
	for i := 0; i < e.multi.NumParts(); i++ {
		n, err := e.multi.Part(i).ArchivePending()
		total += n
		if err != nil && first == nil {
			first = err
		}
	}
	return total, first
}

// startAutoCheckpoint wires the log's appended-bytes trigger to a
// dedicated checkpointer goroutine. The trigger only nudges a buffered
// channel, so agent threads never do checkpoint work; the goroutine runs
// the full fuzzy checkpoint (sweep, truncation) concurrently with
// foreground commits — Checkpoint's own ckptMu serializes it against any
// inline Checkpoint calls.
func (e *Engine) startAutoCheckpoint(everyBytes int64) {
	e.ckptTrig = make(chan struct{}, 1)
	e.ckptStop = make(chan struct{})
	e.ckptDone = make(chan struct{})
	nudge := func() {
		select {
		case e.ckptTrig <- struct{}{}:
		default: // one already pending: coalesce
		}
	}
	if e.multi != nil {
		// Split the byte budget across partitions: with balanced load
		// each partition fires after roughly everyBytes/N of its own
		// inserts, so the combined cadence approximates everyBytes of
		// total log. Skewed load just checkpoints a little more often.
		per := everyBytes / int64(e.multi.NumParts())
		if per < 1 {
			per = 1
		}
		for i := 0; i < e.multi.NumParts(); i++ {
			e.multi.Part(i).SetAppendNotify(per, nudge)
		}
	} else {
		e.log.SetAppendNotify(everyBytes, nudge)
	}
	go e.autoCheckpointLoop()
}

func (e *Engine) autoCheckpointLoop() {
	defer close(e.ckptDone)
	for {
		select {
		case <-e.ckptStop:
			return
		case <-e.ckptTrig:
			// A stop racing a pending trigger must win, or Close would
			// block on a full checkpoint nobody needs.
			select {
			case <-e.ckptStop:
				return
			default:
			}
			if err := e.Checkpoint(); err != nil {
				e.stats.AutoCheckpointFailures.Inc()
			} else {
				e.stats.AutoCheckpoints.Inc()
			}
		}
	}
}

// startArchiver wires the background segment archiver: a goroutine
// that drains the log device's pending-dead set — copying each dead
// segment to cold storage, then recycling its slot — whenever a
// checkpoint's truncation parks new ones. It runs alongside (and
// independently of) the checkpointer, so a slow cold store never
// stalls a checkpoint, let alone a commit. The initial nudge drains
// segments a previous incarnation left pending at the crash.
func (e *Engine) startArchiver() {
	e.archTrig = make(chan struct{}, 1)
	e.archStop = make(chan struct{})
	e.archDone = make(chan struct{})
	go e.archiverLoop()
	e.nudgeArchiver()
}

// nudgeArchiver asks the background archiver for a drain pass
// (non-blocking, coalescing; no-op without an archiver).
func (e *Engine) nudgeArchiver() {
	if e.archTrig == nil {
		return
	}
	select {
	case e.archTrig <- struct{}{}:
	default: // one already pending: coalesce
	}
}

func (e *Engine) archiverLoop() {
	defer close(e.archDone)
	for {
		select {
		case <-e.archStop:
			return
		case <-e.archTrig:
			// A stop racing a pending trigger must win, or Close would
			// block behind a cold-storage copy nobody needs.
			select {
			case <-e.archStop:
				return
			default:
			}
			e.archivePassWithRetry()
		}
	}
}

// Archiver backoff tuning: a failed pass retries after archBackoffMin,
// doubling (with up to 50% added jitter to spread simultaneous
// retriers) up to archBackoffMax, at most archMaxRetries times per
// nudge. Variables, not constants, so tests can shrink the schedule.
var (
	archBackoffMin = 10 * time.Millisecond
	archBackoffMax = 2 * time.Second
	archMaxRetries = 8
)

// archivePassWithRetry runs one archive drain pass, absorbing
// transient cold-store failures with bounded exponential backoff +
// jitter instead of parking the segments until the next checkpoint
// happens to nudge again. Giving up is safe — dead segments stay on
// disk until some pass succeeds — but each retry here shortens the
// window in which a crash-plus-disk-loss could lose history.
func (e *Engine) archivePassWithRetry() {
	backoff := archBackoffMin
	for attempt := 0; ; attempt++ {
		n, err := e.archivePending()
		e.stats.SegmentsArchived.Add(int64(n))
		if err == nil {
			return
		}
		e.stats.ArchiveFailures.Inc()
		if attempt >= archMaxRetries {
			e.stats.ArchiveGaveUp.Inc()
			return
		}
		e.stats.ArchiveRetries.Inc()
		d := backoff + time.Duration(rand.Int63n(int64(backoff/2)+1))
		timer := time.NewTimer(d)
		select {
		case <-e.archStop:
			timer.Stop()
			return
		case <-timer.C:
		}
		if backoff *= 2; backoff > archBackoffMax {
			backoff = archBackoffMax
		}
	}
}

// startCleaner wires the background page cleaner: a goroutine that
// pre-cleans dirty, cold pages whenever the buffer pool's free-or-clean
// headroom drops below pages. It wakes on a short ticker and — more
// importantly — on every demand steal (the store's steal-pressure
// callback), so a burst that outruns the ticker immediately re-arms it.
// Like the checkpointer and the archiver, its work happens entirely off
// the agent threads' fault path.
func (e *Engine) startCleaner(pages int, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	e.cleanTrig = make(chan struct{}, 1)
	e.cleanStop = make(chan struct{})
	e.cleanDone = make(chan struct{})
	e.store.SetStealNotify(func() {
		select {
		case e.cleanTrig <- struct{}{}:
		default: // one already pending: coalesce
		}
	})
	go e.cleanerLoop(pages, interval)
}

func (e *Engine) cleanerLoop(pages int, interval time.Duration) {
	defer close(e.cleanDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.cleanStop:
			return
		case <-tick.C:
		case <-e.cleanTrig:
		}
		// A stop racing a pending wakeup must win, or Close would block
		// behind cleaning I/O nobody needs.
		select {
		case <-e.cleanStop:
			return
		default:
		}
		// Clean until headroom is restored, not just one batch: under
		// sustained write pressure the ticker cadence alone would fall
		// behind, and steals — each of which nudged cleanTrig — would
		// become the de-facto trigger. A pass that claims nothing means
		// every dirty page is pinned or already being written; yield and
		// let the ticker retry.
		for e.store.NeedClean(pages) {
			n, err := e.store.CleanBatch(pages)
			if err != nil {
				e.stats.CleanerFailures.Inc()
				break
			}
			if n == 0 {
				break
			}
			select {
			case <-e.cleanStop:
				return
			default:
			}
		}
	}
}

// Close stops the background incremental checkpointer, the segment
// archiver and the page cleaner, waiting for in-flight work to finish.
// Call it before closing the log. It is idempotent and a no-op for
// engines running no daemons.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.ckptStop != nil {
			if e.multi != nil {
				for i := 0; i < e.multi.NumParts(); i++ {
					e.multi.Part(i).SetAppendNotify(0, nil)
				}
			} else {
				e.log.SetAppendNotify(0, nil)
			}
			close(e.ckptStop)
		}
		if e.archStop != nil {
			close(e.archStop)
		}
		if e.cleanStop != nil {
			close(e.cleanStop)
		}
		if e.retStop != nil {
			close(e.retStop)
		}
	})
	if e.ckptDone != nil {
		<-e.ckptDone
	}
	if e.archDone != nil {
		<-e.archDone
	}
	if e.cleanDone != nil {
		<-e.cleanDone
	}
	if e.retDone != nil {
		<-e.retDone
	}
}

// Log returns the engine's log manager (nil in multi-log mode; use
// Multi).
func (e *Engine) Log() *core.LogManager { return e.log }

// Multi returns the engine's multi-log coordinator (nil in single-log
// mode).
func (e *Engine) Multi() *core.MultiLog { return e.multi }

// Locks returns the engine's lock manager.
func (e *Engine) Locks() *lockmgr.Manager { return e.locks }

// Store returns the engine's page store.
func (e *Engine) Store() *storage.Store { return e.store }

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// CreateTable registers a table. Spaces are assigned deterministically in
// call order (1, 2, 3, …): a restarted process must create its tables in
// the same order for recovery to reattach pages correctly. keyOf may be
// nil, defaulting to DefaultKeyOf.
func (e *Engine) CreateTable(name string, keyOf func([]byte) uint64) (*Table, error) {
	if keyOf == nil {
		keyOf = DefaultKeyOf
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[name]; dup {
		return nil, fmt.Errorf("txn: table %q exists", name)
	}
	e.nextSpace++
	t := &Table{
		Name:  name,
		Space: e.nextSpace,
		Heap:  storage.NewHeapFile(e.store, e.nextSpace, name),
		Index: storage.NewBTree(),
		KeyOf: keyOf,
	}
	e.tables[name] = t
	e.spaces[t.Space] = t
	return t, nil
}

// Table returns a registered table by name.
func (e *Engine) Table(name string) *Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tables[name]
}

// Tables lists registered tables.
func (e *Engine) Tables() []*Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	return out
}

// RebuildTables reattaches pages to their heaps and rebuilds every
// table's index by scanning heap rows. Called after recovery. The page
// universe is the resident set plus everything in the archive backend:
// with demand paging, most pages are not in RAM at this point — they
// fault in (and are evicted again) as the rebuild walks them, so the
// scan is O(database) time but O(cache budget) memory.
func (e *Engine) RebuildTables() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	all, err := e.store.AllPageIDs()
	if err != nil {
		return fmt.Errorf("txn: listing pages for rebuild: %w", err)
	}
	bySpace := make(map[uint32][]uint64)
	var spaces []uint32
	for _, pid := range all {
		sp := storage.PageSpace(pid)
		if _, seen := bySpace[sp]; !seen {
			spaces = append(spaces, sp)
		}
		bySpace[sp] = append(bySpace[sp], pid)
	}
	// Walk spaces in sorted order, not map order: AllPageIDs is sorted, so
	// spaces discovered in order of their first pid are already ascending —
	// the whole rebuild faults pages in strictly increasing pid order. That
	// makes restart deterministic and turns the rebuild into one long
	// sequential run the read-ahead pipeline can stream.
	for _, sp := range spaces {
		pids := bySpace[sp]
		t := e.spaces[sp]
		if t == nil {
			return fmt.Errorf("txn: recovered pages for unknown space %d (tables must be created in the same order as before the crash)", sp)
		}
		for _, pid := range pids { // AllPageIDs() is sorted
			p, err := e.store.Get(pid)
			if err != nil {
				return fmt.Errorf("txn: rebuild fault: %w", err)
			}
			if p == nil {
				continue
			}
			t.Heap.Adopt(p)
			// Index the page's rows while it is resident and pinned: a
			// separate Heap.Scan afterwards would fault the whole
			// database a second time.
			p.Latch.RLock()
			for slot, n := 0, p.NumSlots(); slot < n; slot++ {
				row, err := p.Get(slot)
				if err != nil {
					continue // dead slot
				}
				rid := storage.RID{Page: pid, Slot: uint16(slot)}
				t.Index.Put(t.KeyOf(row), rid.Pack())
			}
			p.Latch.RUnlock()
			p.Unpin()
		}
	}
	return nil
}

// Agent is a per-worker transaction context: it owns a log appender and
// an SLI lock cache. One per agent thread.
type Agent struct {
	eng   *Engine
	ap    *core.Appender
	cache *lockmgr.AgentCache
}

// NewAgent returns a fresh agent context.
func (e *Engine) NewAgent() *Agent {
	a := &Agent{
		eng:   e,
		cache: lockmgr.NewAgentCache(0),
	}
	if e.multi == nil {
		// Multi-log appends go through the coordinator's per-partition
		// appenders (Txn.appendRec); the agent-local appender is the
		// single-log fast path only.
		a.ap = e.log.NewAppender()
	}
	return a
}

// Close releases the agent's inherited locks (shutdown).
func (a *Agent) Close() {
	a.eng.locks.NewLocker(0, a.cache).DropCache()
}

// Begin starts a transaction on this agent. The agent must finish
// (commit or abort) the transaction before beginning another, except
// that pipelined commits detach immediately: the agent may begin the
// next transaction as soon as Commit returns.
func (a *Agent) Begin() *Txn {
	id := a.eng.nextTxn.Add(1)
	t := &Txn{eng: a.eng, agent: a, id: id, home: -1, locker: a.eng.locks.NewLocker(id, a.cache)}
	t.last.Store(lsn.Undefined)
	t.lastStamp.Store(lsn.Undefined)
	t.first.Store(lsn.Undefined)
	a.eng.mu.Lock()
	a.eng.att[id] = t
	a.eng.mu.Unlock()
	return t
}

// attRemove drops a finished transaction from the ATT.
func (e *Engine) attRemove(id uint64) {
	e.mu.Lock()
	delete(e.att, id)
	e.mu.Unlock()
}

// Checkpoint takes a fuzzy checkpoint: begin record, ATT+DPT snapshot in
// the end record, then (if an archive is configured) a page-cleaning
// sweep up to the durable horizon.
func (e *Engine) Checkpoint() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	// In multi-log mode, sample a truncation horizon first: the sample
	// (per-partition append ends, then the seq) becomes usable as soon
	// as the release horizon passes its seq — typically by the next
	// checkpoint. Checkpoint records themselves always go to partition
	// 0, so analysis has a single place to look.
	if e.multi != nil {
		e.multi.SampleHorizon()
	}
	beginRec := &logrec.Record{Header: logrec.Header{Kind: logrec.KindCheckpointBegin}}
	var beginAt, beginStamp lsn.LSN
	if e.multi != nil {
		at, _, seq, err := e.multi.Append(0, beginRec)
		if err != nil {
			return fmt.Errorf("txn: checkpoint begin: %w", err)
		}
		beginAt, beginStamp = at, lsn.LSN(seq)
	} else {
		at, _, err := e.ckptAp.Append(beginRec)
		if err != nil {
			return fmt.Errorf("txn: checkpoint begin: %w", err)
		}
		beginAt, beginStamp = at, at
	}

	var payload logrec.CheckpointPayload
	e.mu.Lock()
	for id, t := range e.att {
		payload.ActiveTxns = append(payload.ActiveTxns, logrec.TxnTableEntry{
			TxnID: id,
			// A home-log LSN in single-log mode, a global seq in
			// multi-log mode — the payload format is unchanged either
			// way.
			LastLSN:      t.lastStamp.Load(),
			Precommitted: t.state.Load() >= stPrecommitted,
		})
	}
	e.mu.Unlock()
	payload.DirtyPages = e.store.DirtyPages()

	rec := &logrec.Record{
		Header:  logrec.Header{Kind: logrec.KindCheckpointEnd, Aux: uint64(beginAt)},
		Payload: payload.Encode(nil),
	}
	var end lsn.LSN
	if e.multi != nil {
		_, e2, _, err := e.multi.Append(0, rec)
		if err != nil {
			return fmt.Errorf("txn: checkpoint end: %w", err)
		}
		end = e2
	} else {
		_, e2, err := e.ckptAp.Append(rec)
		if err != nil {
			return fmt.Errorf("txn: checkpoint end: %w", err)
		}
		end = e2
	}
	if err := e.waitLM(0).WaitDurable(end); err != nil {
		return fmt.Errorf("txn: checkpoint flush: %w", err)
	}
	if e.archive != nil {
		t0 := time.Now()
		var fsyncs0 int64
		fc, hasFC := e.archive.(storage.FsyncCounter)
		if hasFC {
			fsyncs0 = fc.Fsyncs()
		}
		n := e.store.ArchiveDirtyPages(e.archive, e.durableStamp())
		var df int64
		if hasFC {
			df = fc.Fsyncs() - fsyncs0
		}
		// A sweep that wrote pages but cleaned none (all re-dirtied
		// mid-sweep) still did device work; count it by its fsyncs.
		if n > 0 || df > 0 {
			e.stats.Sweeps.Inc()
			e.stats.SweepPages.Add(int64(n))
			e.stats.SweepFsyncs.Add(df)
			e.stats.SweepDuration.Observe(time.Since(t0))
		}
	}
	var truncErr error
	if e.multi != nil {
		_, truncErr = e.multi.TruncateToSeq(uint64(e.releaseLSN(beginStamp)))
	} else {
		_, truncErr = e.log.Truncate(e.releaseLSN(beginStamp))
	}
	if truncErr != nil {
		// The checkpoint itself is durable and the sweep succeeded;
		// failed truncation only means the horizon stays put and the
		// next checkpoint retries. Report it as a counter, not as a
		// failed checkpoint.
		e.stats.TruncateFailures.Inc()
	}
	// Truncation parks dead segments; the archiver goroutine ships them
	// to cold storage and recycles their slots off the checkpoint path,
	// and the cloud-tier maintenance daemon compacts and prunes what
	// the archiver has landed.
	e.nudgeArchiver()
	e.nudgeRetention()
	e.stats.Checkpoints.Inc()
	return nil
}

// releaseLSN computes the truncation horizon after a checkpoint whose
// begin record sits at ckptBegin (a stamp: an LSN in single-log mode, a
// global seq in multi-log mode — t.first and the DPT recLSNs live in
// the same domain): the log below
//
//	min(checkpoint begin, oldest active-txn first LSN, oldest dirty-page recLSN)
//
// is dead. Undo never needs it (every live transaction's records start
// at or above its first LSN), redo never needs it (pages dirtied below
// it were archived by the page-cleaning sweep), and analysis never needs
// it (it starts at this — now newest — checkpoint). Devices that cannot
// truncate ignore the horizon.
func (e *Engine) releaseLSN(ckptBegin lsn.LSN) lsn.LSN {
	release := ckptBegin
	e.mu.Lock()
	for _, t := range e.att {
		if f := t.first.Load(); f.Valid() && f < release {
			release = f
		}
	}
	e.mu.Unlock()
	if m := e.store.MinRecLSN(); m.Valid() && m < release {
		release = m
	}
	return release
}
