package txn

import (
	"errors"
	"testing"
	"time"

	"aether/internal/lockmgr"
)

// TestDeviceFailureFailsCommits injects a log-device failure mid-run and
// checks that committing transactions observe the error instead of
// silently "succeeding" without durability.
func TestDeviceFailureFailsCommits(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()

	tx := ag.Begin()
	if err := tx.Insert(tbl, 1, row(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk on fire")
	h.dev.FailWith(boom)

	tx = ag.Begin()
	if err := tx.Insert(tbl, 2, row(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(CommitSync, nil); !errors.Is(err, boom) {
		t.Fatalf("commit on failed device: %v", err)
	}
}

// TestDeviceFailurePipelinedCallbacksGetError checks the detached
// (pipelined) path delivers device errors through the completion
// callback.
func TestDeviceFailurePipelinedCallbacksGetError(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()

	boom := errors.New("controller reset")
	h.dev.FailWith(boom)

	tx := ag.Begin()
	if err := tx.Insert(tbl, 1, row(1, 1)); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	if err := tx.Commit(CommitPipelined, func(err error) { errCh <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, boom) {
			t.Fatalf("callback error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("callback never delivered the failure")
	}
}

// TestDeadlockVictimCanRetry exercises the full deadlock → abort →
// retry loop applications use.
func TestDeadlockVictimCanRetry(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	agA := h.eng.NewAgent()
	agB := h.eng.NewAgent()
	defer agA.Close()
	defer agB.Close()

	seed := agA.Begin()
	seed.Insert(tbl, 1, row(1, 1))
	seed.Insert(tbl, 2, row(2, 2))
	if err := seed.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}

	// Build a real deadlock: A holds 1 wants 2; B holds 2 wants 1.
	txA := agA.Begin()
	txB := agB.Begin()
	if err := txA.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 10), nil }); err != nil {
		t.Fatal(err)
	}
	if err := txB.Update(tbl, 2, func(r []byte) ([]byte, error) { return row(2, 20), nil }); err != nil {
		t.Fatal(err)
	}
	resA := make(chan error, 1)
	resB := make(chan error, 1)
	go func() {
		resA <- txA.Update(tbl, 2, func(r []byte) ([]byte, error) { return row(2, 21), nil })
	}()
	go func() {
		resB <- txB.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 11), nil })
	}()
	errA, errB := <-resA, <-resB
	// At least one side must have timed out.
	if !errors.Is(errA, lockmgr.ErrLockTimeout) && !errors.Is(errB, lockmgr.ErrLockTimeout) {
		t.Fatalf("no deadlock victim: %v / %v", errA, errB)
	}
	finish := func(tx *Txn, err error) {
		if err != nil {
			if aerr := tx.Abort(); aerr != nil {
				t.Fatalf("victim abort: %v", aerr)
			}
			return
		}
		if cerr := tx.Commit(CommitSync, nil); cerr != nil {
			t.Fatalf("survivor commit: %v", cerr)
		}
	}
	finish(txA, errA)
	finish(txB, errB)

	// Retry the victim's work; it must succeed now.
	retry := agA.Begin()
	if err := retry.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 100), nil }); err != nil {
		t.Fatal(err)
	}
	if err := retry.Update(tbl, 2, func(r []byte) ([]byte, error) { return row(2, 200), nil }); err != nil {
		t.Fatal(err)
	}
	if err := retry.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAbortDuringDeviceFailure ensures rollback still works (in memory)
// when the log device is failing: the transaction's effects are undone
// even though CLRs cannot be made durable.
func TestAbortDuringDeviceFailure(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()

	seed := ag.Begin()
	seed.Insert(tbl, 1, row(1, 50))
	if err := seed.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}

	tx := ag.Begin()
	if err := tx.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 999), nil }); err != nil {
		t.Fatal(err)
	}
	h.dev.FailWith(errors.New("gone"))
	// Abort may fail to log its CLRs, but must still restore memory
	// state (recovery would handle the durable side after a crash).
	_ = tx.Abort()
	h.dev.FailWith(nil)

	check := ag.Begin()
	got, err := check.Read(tbl, 1)
	if err != nil || rowValue(got) != 50 {
		t.Fatalf("abort under failing device: %d %v", rowValue(got), err)
	}
	check.Commit(CommitSync, nil)
}
