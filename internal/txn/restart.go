package txn

import (
	"fmt"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logdev"
	"aether/internal/lsn"
	"aether/internal/recovery"
	"aether/internal/storage"
)

// RestartConfig describes how to bring a database back from its durable
// state (log device + optional page archive).
type RestartConfig struct {
	// Device is the log device holding the durable log.
	Device logdev.Device
	// Archive is the page archive (database file); may be nil.
	Archive storage.Archive
	// LogConfig configures the new log manager. Device and Buffer.Base
	// are set by Restart.
	LogConfig core.Config
	// LockConfig configures the new lock manager.
	LockConfig lockmgr.Config
	// CheckpointEveryBytes enables the engine's background incremental
	// checkpointer (see txn.Config.CheckpointEveryBytes).
	CheckpointEveryBytes int64
	// CachePages, if > 0, bounds the page store to at most this many
	// resident pages: pages beyond the budget fault in from Archive on
	// demand and are evicted (dirty ones stolen back through the
	// archive after the log is forced) to make room. 0 keeps the
	// original fully memory-resident behavior. Requires Archive.
	CachePages int64
	// CleanerPages enables the engine's background page cleaner (see
	// txn.Config.CleanerPages). Meaningful only with CachePages set.
	CleanerPages int
	// CleanerInterval is the cleaner's polling cadence (see
	// txn.Config.CleanerInterval).
	CleanerInterval time.Duration
	// PrefetchDepth enables sequential read-ahead in the buffer pool (see
	// txn.Config.PrefetchDepth). It is armed before recovery runs, so a
	// redo pass walking pages in log order and the RebuildTables scan both
	// stream their faults. Meaningful only with Archive set.
	PrefetchDepth int
}

// Restart performs crash recovery and returns a ready engine: read the
// durable log, attach the archive as the page store's demand-paging
// backend, run ARIES analysis/redo/undo (logging CLRs into the restarted
// log), and hand back the engine. Pages are no longer loaded eagerly at
// open — redo faults exactly the pages it touches, so restart memory is
// O(working set), not O(database). The caller must re-create its tables
// in the original order and then call RebuildTables.
func Restart(cfg RestartConfig) (*Engine, *recovery.Result, error) {
	// Read only the live tail: a truncated device recycled everything
	// below its base, and recovery is O(log-since-checkpoint) because of
	// it. LSNs are stable, so the new buffer resumes at base+len(tail).
	logData, base, err := logdev.ReadTail(cfg.Device)
	if err != nil {
		return nil, nil, fmt.Errorf("txn: reading log: %w", err)
	}
	store := storage.NewStore()
	if cfg.Archive != nil {
		if err := store.SetBackend(cfg.Archive); err != nil {
			return nil, nil, fmt.Errorf("txn: attaching archive: %w", err)
		}
	}
	if cfg.CachePages > 0 {
		store.SetCachePages(cfg.CachePages)
	}
	if cfg.PrefetchDepth > 0 {
		// Armed before recovery: redo's faults and the post-recovery
		// RebuildTables walk are the most sequential access patterns the
		// pool ever sees — exactly what read-ahead is for.
		store.SetPrefetch(cfg.PrefetchDepth)
	}
	lcfg := cfg.LogConfig
	lcfg.Device = cfg.Device
	lcfg.Buffer.Base = lsn.LSN(base).Add(len(logData))
	lm, err := core.New(lcfg)
	if err != nil {
		return nil, nil, err
	}
	// The WAL hook must be in place before recovery faults its first
	// page: faulted images are verified against the durable horizon, and
	// any eviction during redo may need to steal through it.
	store.AttachWAL(lm)
	res, err := recovery.Recover(recovery.Options{
		Log:      logData,
		Base:     lsn.LSN(base),
		Store:    store,
		Appender: lm.NewAppender(),
		// Pages reaching the store through the archive are verified at
		// fault time against the durable horizon; this flag covers any
		// page already resident when recovery starts.
		VerifyArchive: cfg.Archive != nil,
	})
	if err != nil {
		lm.Close()
		return nil, nil, err
	}
	// Recovery's CLRs and end records must be durable before new work
	// starts, or a second crash could strand a half-undone loser whose
	// compensation vanished.
	lm.Flush()
	eng, err := NewEngine(Config{
		Log:                  lm,
		Locks:                lockmgr.New(cfg.LockConfig),
		Store:                store,
		Archive:              cfg.Archive,
		CheckpointEveryBytes: cfg.CheckpointEveryBytes,
		CleanerPages:         cfg.CleanerPages,
		CleanerInterval:      cfg.CleanerInterval,
		PrefetchDepth:        cfg.PrefetchDepth,
	})
	if err != nil {
		lm.Close()
		return nil, nil, err
	}
	return eng, res, nil
}
