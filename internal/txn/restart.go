package txn

import (
	"fmt"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logdev"
	"aether/internal/lsn"
	"aether/internal/recovery"
	"aether/internal/storage"
)

// RestartConfig describes how to bring a database back from its durable
// state (log device + optional page archive).
type RestartConfig struct {
	// Device is the log device holding the durable log (single-log
	// mode; ignored when Devices is set).
	Device logdev.Device
	// Devices, if it holds two or more devices, restarts the database
	// in partitioned (multi-log) mode: one device per log partition, in
	// partition order. Recovery merges the partitions' tails by global
	// seq and the engine runs over a core.MultiLog.
	Devices []logdev.Device
	// RoutePartition overrides the multi-log home-partition routing
	// (see Config.Route). Nil defaults to page space modulo partition
	// count.
	RoutePartition func(txnID uint64, space uint32) int
	// Archive is the page archive (database file); may be nil.
	Archive storage.Archive
	// LogConfig configures the new log manager. Device and Buffer.Base
	// are set by Restart.
	LogConfig core.Config
	// LockConfig configures the new lock manager.
	LockConfig lockmgr.Config
	// CheckpointEveryBytes enables the engine's background incremental
	// checkpointer (see txn.Config.CheckpointEveryBytes).
	CheckpointEveryBytes int64
	// CachePages, if > 0, bounds the page store to at most this many
	// resident pages: pages beyond the budget fault in from Archive on
	// demand and are evicted (dirty ones stolen back through the
	// archive after the log is forced) to make room. 0 keeps the
	// original fully memory-resident behavior. Requires Archive.
	CachePages int64
	// CleanerPages enables the engine's background page cleaner (see
	// txn.Config.CleanerPages). Meaningful only with CachePages set.
	CleanerPages int
	// CleanerInterval is the cleaner's polling cadence (see
	// txn.Config.CleanerInterval).
	CleanerInterval time.Duration
	// PrefetchDepth enables sequential read-ahead in the buffer pool (see
	// txn.Config.PrefetchDepth). It is armed before recovery runs, so a
	// redo pass walking pages in log order and the RebuildTables scan both
	// stream their faults. Meaningful only with Archive set.
	PrefetchDepth int
	// Retention arms the cloud-tier maintenance daemon (see
	// txn.Config.Retention). Meaningful only when the log devices
	// archive into a remote object store.
	Retention RetentionConfig
}

// Restart performs crash recovery and returns a ready engine: read the
// durable log, attach the archive as the page store's demand-paging
// backend, run ARIES analysis/redo/undo (logging CLRs into the restarted
// log), and hand back the engine. Pages are no longer loaded eagerly at
// open — redo faults exactly the pages it touches, so restart memory is
// O(working set), not O(database). The caller must re-create its tables
// in the original order and then call RebuildTables.
func Restart(cfg RestartConfig) (*Engine, *recovery.Result, error) {
	if len(cfg.Devices) >= 2 {
		return restartMulti(cfg)
	}
	// Read only the live tail: a truncated device recycled everything
	// below its base, and recovery is O(log-since-checkpoint) because of
	// it. LSNs are stable, so the new buffer resumes at base+len(tail).
	logData, base, err := logdev.ReadTail(cfg.Device)
	if err != nil {
		return nil, nil, fmt.Errorf("txn: reading log: %w", err)
	}
	store := storage.NewStore()
	if cfg.Archive != nil {
		if err := store.SetBackend(cfg.Archive); err != nil {
			return nil, nil, fmt.Errorf("txn: attaching archive: %w", err)
		}
	}
	if cfg.CachePages > 0 {
		store.SetCachePages(cfg.CachePages)
	}
	if cfg.PrefetchDepth > 0 {
		// Armed before recovery: redo's faults and the post-recovery
		// RebuildTables walk are the most sequential access patterns the
		// pool ever sees — exactly what read-ahead is for.
		store.SetPrefetch(cfg.PrefetchDepth)
	}
	lcfg := cfg.LogConfig
	lcfg.Device = cfg.Device
	lcfg.Buffer.Base = lsn.LSN(base).Add(len(logData))
	lm, err := core.New(lcfg)
	if err != nil {
		return nil, nil, err
	}
	// The WAL hook must be in place before recovery faults its first
	// page: faulted images are verified against the durable horizon, and
	// any eviction during redo may need to steal through it.
	store.AttachWAL(lm)
	res, err := recovery.Recover(recovery.Options{
		Log:      logData,
		Base:     lsn.LSN(base),
		Store:    store,
		Appender: lm.NewAppender(),
		// Pages reaching the store through the archive are verified at
		// fault time against the durable horizon; this flag covers any
		// page already resident when recovery starts.
		VerifyArchive: cfg.Archive != nil,
	})
	if err != nil {
		lm.Close()
		return nil, nil, err
	}
	// Recovery's CLRs and end records must be durable before new work
	// starts, or a second crash could strand a half-undone loser whose
	// compensation vanished.
	lm.Flush()
	eng, err := NewEngine(Config{
		Log:                  lm,
		Locks:                lockmgr.New(cfg.LockConfig),
		Store:                store,
		Archive:              cfg.Archive,
		CheckpointEveryBytes: cfg.CheckpointEveryBytes,
		CleanerPages:         cfg.CleanerPages,
		CleanerInterval:      cfg.CleanerInterval,
		PrefetchDepth:        cfg.PrefetchDepth,
		Retention:            cfg.Retention,
	})
	if err != nil {
		lm.Close()
		return nil, nil, err
	}
	return eng, res, nil
}

// restartMulti is Restart for a partitioned log: read every partition's
// durable tail, seed the global sequence counter from the largest stamp
// on disk, build one LogManager per device under a MultiLog
// coordinator, and run the merged-order recovery (whose CLRs route back
// to each loser's home partition).
func restartMulti(cfg RestartConfig) (*Engine, *recovery.Result, error) {
	n := len(cfg.Devices)
	tails := make([][]byte, n)
	bases := make([]lsn.LSN, n)
	var maxSeq uint64
	for i, dev := range cfg.Devices {
		logData, base, err := logdev.ReadTail(dev)
		if err != nil {
			return nil, nil, fmt.Errorf("txn: reading log partition %d: %w", i, err)
		}
		tails[i] = logData
		bases[i] = lsn.LSN(base)
		if s := recovery.MaxSeq(logData, lsn.LSN(base)); s > maxSeq {
			maxSeq = s
		}
	}
	store := storage.NewStore()
	if cfg.Archive != nil {
		if err := store.SetBackend(cfg.Archive); err != nil {
			return nil, nil, fmt.Errorf("txn: attaching archive: %w", err)
		}
	}
	if cfg.CachePages > 0 {
		store.SetCachePages(cfg.CachePages)
	}
	if cfg.PrefetchDepth > 0 {
		store.SetPrefetch(cfg.PrefetchDepth)
	}
	lms := make([]*core.LogManager, n)
	closeAll := func() {
		for _, lm := range lms {
			if lm != nil {
				lm.Close()
			}
		}
	}
	for i := range cfg.Devices {
		lcfg := cfg.LogConfig
		lcfg.Device = cfg.Devices[i]
		lcfg.Buffer.Base = bases[i].Add(len(tails[i]))
		lm, err := core.New(lcfg)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("txn: log partition %d: %w", i, err)
		}
		lms[i] = lm
	}
	ml, err := core.NewMultiLog(lms, maxSeq)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	// The WAL hook must be in place before recovery faults its first
	// page (stamps are seqs in multi-log mode).
	store.AttachWAL(ml)
	res, err := recovery.RecoverMulti(recovery.MultiOptions{
		Logs:          tails,
		Bases:         bases,
		Store:         store,
		Multi:         ml,
		VerifyArchive: cfg.Archive != nil,
	})
	if err != nil {
		ml.Close()
		return nil, nil, err
	}
	// Recovery's CLRs and end records must be durable before new work
	// starts, or a second crash could strand a half-undone loser whose
	// compensation vanished.
	if err := ml.FlushAll(); err != nil {
		ml.Close()
		return nil, nil, fmt.Errorf("txn: flushing recovery log: %w", err)
	}
	eng, err := NewEngine(Config{
		Multi:                ml,
		Route:                cfg.RoutePartition,
		Locks:                lockmgr.New(cfg.LockConfig),
		Store:                store,
		Archive:              cfg.Archive,
		CheckpointEveryBytes: cfg.CheckpointEveryBytes,
		CleanerPages:         cfg.CleanerPages,
		CleanerInterval:      cfg.CleanerInterval,
		PrefetchDepth:        cfg.PrefetchDepth,
		Retention:            cfg.Retention,
	})
	if err != nil {
		ml.Close()
		return nil, nil, err
	}
	return eng, res, nil
}
