// retention.go is the cloud log tier's maintenance daemon: a fourth
// background goroutine beside the checkpointer, segment archiver and
// page cleaner. Each pass it (1) compacts runs of raw per-segment
// objects in the remote store into larger immutable indexed packs,
// (2) cuts a new materialized snapshot object once enough new log has
// hardened since the last cut, and (3) enforces retention by pruning
// snapshots — and the log objects below the oldest one that remains.
//
// The retention invariant: nothing is ever pruned below the oldest
// restorable point. The floor is the oldest retained snapshot's cut;
// that snapshot materializes the replay of everything beneath it, so
// every RestoreTo target at or above the floor stays reachable, and the
// prune only ever removes objects wholly below it. With no snapshots
// (partitioned lanes, or snapshotting disabled) the floor is zero and
// the prune is a no-op — retention degrades to keep-everything, never
// to lose-something.
package txn

import (
	"fmt"

	"aether/internal/logdev"
	"aether/internal/recovery"
)

// RetentionLane couples one log's segmented device with its remote
// archiver (partitioned databases have one lane per partition).
type RetentionLane struct {
	// Dev is the lane's segmented log device.
	Dev *logdev.Segmented
	// Remote is the lane's remote archiver over the object store.
	Remote *logdev.RemoteArchiver
}

// RetentionConfig arms the cloud-tier maintenance daemon.
type RetentionConfig struct {
	// Lanes lists the log devices and their remote archivers; one lane
	// for a single log, one per partition otherwise.
	Lanes []RetentionLane
	// CompactSegments packs runs of at least this many contiguous raw
	// segment objects into one indexed pack object (default 4).
	CompactSegments int
	// MaxPackSegments caps segments per pack (default 64).
	MaxPackSegments int
	// SnapshotEveryBytes cuts a new snapshot object once this many new
	// log bytes have hardened since the last cut. 0 disables snapshots
	// (and therefore pruning). Only a single lane takes snapshots: a
	// partitioned log's pages interleave across lanes, so its floor
	// stays at zero and retention is compaction-only.
	SnapshotEveryBytes int64
	// RetainSnapshots keeps the newest N snapshots; older snapshots and
	// the log objects wholly below the oldest survivor are pruned.
	// 0 keeps every snapshot forever.
	RetainSnapshots int
}

// startRetention wires the cloud-tier maintenance daemon, nudged after
// every checkpoint (truncation is what parks segments for the archiver,
// whose uploads are what compaction feeds on).
func (e *Engine) startRetention(cfg RetentionConfig) {
	if cfg.CompactSegments <= 0 {
		cfg.CompactSegments = 4
	}
	if cfg.MaxPackSegments <= 0 {
		cfg.MaxPackSegments = 64
	}
	e.retCfg = cfg
	e.retTrig = make(chan struct{}, 1)
	e.retStop = make(chan struct{})
	e.retDone = make(chan struct{})
	go e.retentionLoop()
	e.nudgeRetention()
}

// nudgeRetention asks the maintenance daemon for a pass (coalescing).
func (e *Engine) nudgeRetention() {
	if e.retTrig == nil {
		return
	}
	select {
	case e.retTrig <- struct{}{}:
	default:
	}
}

func (e *Engine) retentionLoop() {
	defer close(e.retDone)
	for {
		select {
		case <-e.retStop:
			return
		case <-e.retTrig:
		}
		e.retentionPass()
	}
}

// retentionPass runs one compact → snapshot → prune cycle. Failures
// are counted and left for the next nudge: like the archiver, the
// daemon must never lose anything on error — a failed upload or prune
// just leaves extra objects (or a stale floor) behind.
func (e *Engine) retentionPass() {
	cfg := e.retCfg
	for _, lane := range cfg.Lanes {
		if _, err := lane.Remote.CompactRaw(cfg.CompactSegments, cfg.MaxPackSegments); err != nil {
			e.stats.RetentionFailures.Inc()
		}
	}
	if len(cfg.Lanes) == 1 && cfg.SnapshotEveryBytes > 0 {
		if err := e.snapshotPass(cfg.Lanes[0]); err != nil {
			e.stats.RetentionFailures.Inc()
		}
		if cfg.RetainSnapshots > 0 {
			objs, snaps, err := cfg.Lanes[0].Remote.PruneToSnapshots(cfg.RetainSnapshots)
			e.stats.RetentionPrunedObjects.Add(int64(objs + snaps))
			if err != nil {
				e.stats.RetentionFailures.Inc()
			}
		}
	}
}

// snapshotPass cuts a new snapshot object if enough log has hardened
// since the newest one, seeding the replay from that newest snapshot so
// the cost is proportional to the new suffix, not total history.
func (e *Engine) snapshotPass(lane RetentionLane) error {
	cuts, err := lane.Remote.SnapshotCuts()
	if err != nil {
		return err
	}
	var lastCut uint64
	if len(cuts) > 0 {
		lastCut = cuts[len(cuts)-1]
	}
	durable := lane.Dev.DurableSize()
	if durable-int64(lastCut) < e.retCfg.SnapshotEveryBytes {
		return nil
	}
	var prev *logdev.Snapshot
	if lastCut > 0 {
		if prev, err = lane.Remote.GetSnapshot(lastCut); err != nil {
			return err
		}
	}
	data, start, err := lane.Dev.RestoreLog(lane.Remote, int64(lastCut))
	if err != nil {
		return err
	}
	if uint64(start) > lastCut {
		return fmt.Errorf("txn: snapshot: restore reaches back to %d, need %d", start, lastCut)
	}
	data = data[lastCut-uint64(start):]
	snap, err := recovery.BuildSnapshot(prev, data, lastCut)
	if err != nil {
		return err
	}
	if err := lane.Remote.PutSnapshot(snap); err != nil {
		return err
	}
	e.stats.SnapshotsTaken.Inc()
	return nil
}
