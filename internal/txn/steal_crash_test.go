package txn

import (
	"fmt"
	"testing"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
)

// stealRow builds a row fat enough that a handful fill a page, so small
// insert counts span many pages and a tiny cache budget forces steals.
func stealRow(k uint64) []byte {
	return append(row(k, k*7), make([]byte, 1500)...)
}

func restartBounded(t *testing.T, dev *logdev.Mem, arch storage.Archive, cachePages int64) (*Engine, int) {
	t.Helper()
	eng, res, err := Restart(RestartConfig{
		Device:  dev,
		Archive: arch,
		LogConfig: core.Config{
			Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		},
		LockConfig: lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true},
		CachePages: cachePages,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { eng.Log().Close() })
	return eng, res.RedoApplied
}

// TestStealCrashRecovery is the buffer pool's crash contract: a dirty
// page evicted under memory pressure (steal write-back, log forced
// first) reaches the database file with NO checkpoint having run; a
// crash before the next checkpoint must serve the stolen image from the
// archive and redo only the log tail above its pageLSN.
func TestStealCrashRecovery(t *testing.T) {
	const cachePages = 4
	dev := logdev.NewMem(logdev.ProfileMemory)
	arch := storage.NewMemArchive()
	eng, _ := restartBounded(t, dev, arch, cachePages)

	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ag := eng.NewAgent()
	const keys = 100 // ≈ 20 pages at ~5 rows/page: 5× the budget
	for k := uint64(1); k <= keys; k++ {
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, stealRow(k)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatalf("commit %d: %v", k, err)
		}
	}
	ag.Close()

	// Memory pressure alone must have stolen dirty pages to the archive
	// — deliberately, no Checkpoint call anywhere in this test.
	cs := eng.Store().CacheStats()
	if cs.StealWrites == 0 || cs.Evictions == 0 {
		t.Fatalf("no steal pressure: %+v", cs)
	}
	if int64(len(eng.Store().PageIDs())) > cachePages {
		t.Fatalf("resident %d pages, budget %d", len(eng.Store().PageIDs()), cachePages)
	}
	stolen, err := arch.Pages()
	if err != nil || len(stolen) == 0 {
		t.Fatalf("no stolen images in the archive: %v", err)
	}
	if s := eng.Stats().Checkpoints.Load(); s != 0 {
		t.Fatalf("test invalid: %d checkpoints ran", s)
	}

	// Crash without a graceful shutdown.
	dev.CrashFreeze()
	eng.Log().Close()
	dev.Remount()

	eng2, redo := restartBounded(t, dev, arch, cachePages)
	// Redo must skip the updates already captured by the stolen images:
	// strictly fewer records than the keys inserts that are all in the
	// durable log (CommitSync), but more than zero (pages still resident
	// at the crash were never archived).
	if redo >= keys {
		t.Fatalf("redo reapplied %d records — stolen images were not used to clamp redo", redo)
	}
	if redo == 0 {
		t.Fatalf("redo applied nothing; expected the un-stolen tail")
	}

	tbl2, err := eng2.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.RebuildTables(); err != nil {
		t.Fatal(err)
	}
	// Recovery is exact: every committed row readable with its value,
	// within the same cache budget.
	ag2 := eng2.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	for k := uint64(1); k <= keys; k++ {
		got, err := check.Read(tbl2, k)
		if err != nil {
			t.Fatalf("key %d lost after steal+crash: %v", k, err)
		}
		if rowValue(got) != k*7 {
			t.Fatalf("key %d: value %d, want %d", k, rowValue(got), k*7)
		}
	}
	if err := check.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}
	if r := eng2.Store().CacheStats().Resident; r > cachePages {
		t.Fatalf("post-recovery resident %d exceeds budget %d", r, cachePages)
	}
}

// TestStealCrashRecoveryWithUpdates layers updates over steals: a page
// is stolen carrying committed value v1, then updated to v2 (log only),
// then the system crashes. Redo must replay exactly the tail above the
// stolen image's pageLSN, landing on v2.
func TestStealCrashRecoveryWithUpdates(t *testing.T) {
	const cachePages = 4
	dev := logdev.NewMem(logdev.ProfileMemory)
	arch := storage.NewMemArchive()
	eng, _ := restartBounded(t, dev, arch, cachePages)

	tbl, err := eng.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ag := eng.NewAgent()
	const keys = 60
	for k := uint64(1); k <= keys; k++ {
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, stealRow(k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Store().CacheStats().StealWrites == 0 {
		t.Fatal("no steals before the update phase")
	}
	// Second wave: every third key re-written (faulting its page back
	// in, possibly stealing others out).
	for k := uint64(1); k <= keys; k += 3 {
		tx := ag.Begin()
		err := tx.Update(tbl, k, func(r []byte) ([]byte, error) {
			return append(row(k, k*1000), make([]byte, 1500)...), nil
		})
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
	}
	ag.Close()

	dev.CrashFreeze()
	eng.Log().Close()
	dev.Remount()

	eng2, _ := restartBounded(t, dev, arch, cachePages)
	tbl2, err := eng2.CreateTable("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.RebuildTables(); err != nil {
		t.Fatal(err)
	}
	ag2 := eng2.NewAgent()
	defer ag2.Close()
	check := ag2.Begin()
	for k := uint64(1); k <= keys; k++ {
		got, err := check.Read(tbl2, k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		want := k * 7
		if k%3 == 1 {
			want = k * 1000
		}
		if rowValue(got) != want {
			t.Fatalf("key %d: value %d, want %d", k, rowValue(got), want)
		}
	}
	if err := check.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedCacheMatchesUnboundedAfterCrash cross-checks the bounded
// pool against the fully resident baseline on the same crash image: both
// must recover the identical database.
func TestBoundedCacheMatchesUnboundedAfterCrash(t *testing.T) {
	dev := logdev.NewMem(logdev.ProfileMemory)
	arch := storage.NewMemArchive()
	eng, _ := restartBounded(t, dev, arch, 3)
	tbl, _ := eng.CreateTable("t", nil)
	ag := eng.NewAgent()
	const keys = 50
	for k := uint64(1); k <= keys; k++ {
		tx := ag.Begin()
		if err := tx.Insert(tbl, k, stealRow(k)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(CommitSync, nil); err != nil {
			t.Fatal(err)
		}
	}
	ag.Close()
	dev.CrashFreeze()
	eng.Log().Close()
	dev.Remount()

	read := func(eng *Engine) map[uint64]uint64 {
		tbl, err := eng.CreateTable("t", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RebuildTables(); err != nil {
			t.Fatal(err)
		}
		ag := eng.NewAgent()
		defer ag.Close()
		tx := ag.Begin()
		defer tx.Commit(CommitSync, nil)
		out := make(map[uint64]uint64)
		for k := uint64(1); k <= keys; k++ {
			got, err := tx.Read(tbl, k)
			if err != nil {
				t.Fatalf("key %d: %v", k, err)
			}
			out[k] = rowValue(got)
		}
		return out
	}

	// Recover bounded first (read-only recovery does not change the
	// durable image the second recovery starts from: CLRs would, but
	// this workload has no losers).
	engBounded, _ := restartBounded(t, dev, arch, 3)
	bounded := read(engBounded)
	engBounded.Log().Close()
	dev.CrashFreeze()
	dev.Remount()
	engFull, _ := restartBounded(t, dev, arch, 0) // unbounded
	full := read(engFull)
	if fmt.Sprint(bounded) != fmt.Sprint(full) {
		t.Fatalf("bounded and unbounded recovery disagree:\nbounded:  %v\nunbounded: %v", bounded, full)
	}
}
