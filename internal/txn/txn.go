package txn

import (
	"fmt"
	"sync/atomic"

	"aether/internal/lockmgr"
	"aether/internal/logrec"
	"aether/internal/lsn"
	"aether/internal/storage"
)

// Transaction states.
const (
	stActive int32 = iota
	// stPrecommitted: the commit record is in the log buffer; under ELR
	// the locks are already released. The transaction can no longer
	// abort (except by crash, which recovery handles).
	stPrecommitted
	stCommitted
	stAborted
)

// undoEntry remembers one update for transaction-local rollback. Runtime
// rollback uses this in-memory chain (every live transaction has its
// records at hand); crash rollback reads the durable log instead.
type undoEntry struct {
	pageID uint64
	at     lsn.LSN // LSN of the update record
	prev   lsn.LSN // PrevLSN of that record (the next undo target)
	up     logrec.UpdatePayload
}

// Txn is one transaction. It is driven by a single agent goroutine.
type Txn struct {
	eng    *Engine
	agent  *Agent
	id     uint64
	locker *lockmgr.Locker

	last lsn.Atomic // most recent log record's home-log LSN (PrevLSN chain)
	// lastStamp is what the checkpoint ATT snapshots as the record to
	// start undo from: the same home-log LSN in single-log mode, the
	// record's global seq in multi-log mode.
	lastStamp lsn.Atomic
	// first pins the truncation horizon: the first record's LSN in
	// single-log mode, its global seq in multi-log mode.
	first lsn.Atomic
	state atomic.Int32 // atomic: checkpoint and daemon callbacks read it

	// home is the transaction's log partition in multi-log mode,
	// assigned from its first logged update's page space (-1 until
	// then; unused in single-log mode).
	home int

	lastEnd   lsn.LSN // end LSN of the most recent record (home log)
	writes    int
	undo      []undoEntry
	indexUndo []func()
}

// appendRec routes rec to the transaction's log — the single log, or
// the multi-log home partition — and returns the record's home-log
// address and end plus the two stamps derived from it: pageStamp is
// what page images carry after applying the record, recStamp what the
// DPT records as the page's recLSN. In single-log mode they are the
// record's end and start LSN; in multi-log mode both are the record's
// global seq.
func (t *Txn) appendRec(rec *logrec.Record) (at, end, pageStamp, recStamp lsn.LSN, err error) {
	e := t.eng
	if e.multi == nil {
		at, end, err = t.agent.ap.Append(rec)
		return at, end, end, at, err
	}
	if t.home < 0 {
		t.home = e.route(t.id, storage.PageSpace(rec.PageID))
	}
	at, end, seq, err := e.multi.Append(t.home, rec)
	return at, end, lsn.LSN(seq), lsn.LSN(seq), err
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Writes returns how many update records the transaction has logged.
func (t *Txn) Writes() int { return t.writes }

// logUpdate is the storage.LogFunc for this transaction: append a
// physiological update record, chain PrevLSN, and remember the undo.
// It returns (recStamp, pageStamp): the values the heap feeds to
// MarkDirty and Page.Apply — LSNs in single-log mode, seqs in
// multi-log mode.
func (t *Txn) logUpdate(pageID uint64, up logrec.UpdatePayload) (lsn.LSN, lsn.LSN, error) {
	prev := t.last.Load()
	if prev == lsn.Undefined {
		// Publish a conservative first-stamp lower bound before the
		// insert reserves a real address. The durable horizon can never
		// exceed a future insert's stamp, so a checkpoint that observes
		// this bound (or observes Undefined, meaning our insert hasn't
		// started and will land above its begin record) can never set
		// the truncation horizon past our first record.
		t.first.Store(t.eng.durableStamp())
	}
	rec := logrec.NewUpdate(t.id, prev, pageID, up)
	at, end, pageStamp, recStamp, err := t.appendRec(rec)
	if err != nil {
		return 0, 0, err
	}
	if prev == lsn.Undefined {
		t.first.Store(recStamp)
	}
	// Deep-copy the images: the payload aliases page memory that will
	// change, and rollback needs the originals.
	saved := logrec.UpdatePayload{
		Op:     up.Op,
		Slot:   up.Slot,
		Before: append([]byte(nil), up.Before...),
		After:  append([]byte(nil), up.After...),
	}
	t.undo = append(t.undo, undoEntry{pageID: pageID, at: at, prev: prev, up: saved})
	t.last.Store(at)
	t.lastStamp.Store(recStamp)
	t.lastEnd = end
	t.writes++
	return recStamp, pageStamp, nil
}

func (t *Txn) active() error {
	if t.state.Load() != stActive {
		return ErrTxnDone
	}
	return nil
}

// Insert adds a row under key. The row bytes must embed the key per the
// table's KeyOf convention.
func (t *Txn) Insert(tbl *Table, key uint64, row []byte) error {
	if err := t.active(); err != nil {
		return err
	}
	if err := t.locker.Acquire(lockmgr.TableKey(tbl.Space), lockmgr.ModeIX); err != nil {
		return err
	}
	if err := t.locker.Acquire(lockmgr.RowKey(tbl.Space, key), lockmgr.ModeX); err != nil {
		return err
	}
	if _, exists := tbl.Index.Get(key); exists {
		return ErrDuplicateKey
	}
	rid, err := tbl.Heap.Insert(row, t.logUpdate)
	if err != nil {
		return err
	}
	tbl.Index.Put(key, rid.Pack())
	t.indexUndo = append(t.indexUndo, func() { tbl.Index.Delete(key) })
	return nil
}

// Read returns a copy of the row under key (S-locked).
func (t *Txn) Read(tbl *Table, key uint64) ([]byte, error) {
	if err := t.active(); err != nil {
		return nil, err
	}
	if err := t.locker.Acquire(lockmgr.TableKey(tbl.Space), lockmgr.ModeIS); err != nil {
		return nil, err
	}
	if err := t.locker.Acquire(lockmgr.RowKey(tbl.Space, key), lockmgr.ModeS); err != nil {
		return nil, err
	}
	packed, ok := tbl.Index.Get(key)
	if !ok {
		return nil, ErrKeyNotFound
	}
	row, err := tbl.Heap.Read(storage.UnpackRID(packed))
	if err != nil {
		return nil, fmt.Errorf("txn: index points at missing row: %w", err)
	}
	return row, nil
}

// Update rewrites the row under key through fn (X-locked
// read-modify-write).
func (t *Txn) Update(tbl *Table, key uint64, fn func(row []byte) ([]byte, error)) error {
	if err := t.active(); err != nil {
		return err
	}
	if err := t.locker.Acquire(lockmgr.TableKey(tbl.Space), lockmgr.ModeIX); err != nil {
		return err
	}
	if err := t.locker.Acquire(lockmgr.RowKey(tbl.Space, key), lockmgr.ModeX); err != nil {
		return err
	}
	packed, ok := tbl.Index.Get(key)
	if !ok {
		return ErrKeyNotFound
	}
	return tbl.Heap.Mutate(storage.UnpackRID(packed), t.logUpdate, fn)
}

// Delete removes the row under key.
func (t *Txn) Delete(tbl *Table, key uint64) error {
	if err := t.active(); err != nil {
		return err
	}
	if err := t.locker.Acquire(lockmgr.TableKey(tbl.Space), lockmgr.ModeIX); err != nil {
		return err
	}
	if err := t.locker.Acquire(lockmgr.RowKey(tbl.Space, key), lockmgr.ModeX); err != nil {
		return err
	}
	packed, ok := tbl.Index.Get(key)
	if !ok {
		return ErrKeyNotFound
	}
	rid := storage.UnpackRID(packed)
	if err := tbl.Heap.Delete(rid, t.logUpdate); err != nil {
		return err
	}
	tbl.Index.Delete(key)
	t.indexUndo = append(t.indexUndo, func() { tbl.Index.Put(key, rid.Pack()) })
	return nil
}

// Scan visits rows with keys in [from, to] in key order under a
// table-level S lock (a coarse-grained scan: simple, and correct against
// concurrent writers, which block on the table lock).
func (t *Txn) Scan(tbl *Table, from, to uint64, fn func(key uint64, row []byte) bool) error {
	if err := t.active(); err != nil {
		return err
	}
	if err := t.locker.Acquire(lockmgr.TableKey(tbl.Space), lockmgr.ModeS); err != nil {
		return err
	}
	var scanErr error
	tbl.Index.Scan(from, to, func(key, packed uint64) bool {
		row, err := tbl.Heap.Read(storage.UnpackRID(packed))
		if err != nil {
			scanErr = fmt.Errorf("txn: scan at key %d: %w", key, err)
			return false
		}
		return fn(key, row)
	})
	return scanErr
}

// Commit finishes the transaction under the given protocol. whenDone, if
// non-nil, runs exactly once when the commit outcome is decided for the
// client: after durability for safe modes, immediately for CommitAsync.
// For pipelined modes whenDone runs on the log daemon's goroutine; for
// others it runs on the caller's.
//
// The returned error reports the synchronous part only; pipelined
// durability errors arrive via whenDone.
func (t *Txn) Commit(mode CommitMode, whenDone func(error)) error {
	if err := t.active(); err != nil {
		return err
	}

	// Read-only transactions have nothing to harden: release and reply.
	if t.writes == 0 {
		t.state.Store(stCommitted)
		t.locker.ReleaseAll()
		t.eng.attRemove(t.id)
		t.eng.stats.ReadOnly.Inc()
		t.eng.stats.Commits.Inc()
		if whenDone != nil {
			whenDone(nil)
		}
		return nil
	}

	rec := logrec.NewCommit(t.id, t.last.Load())
	at, end, _, recStamp, err := t.appendRec(rec)
	if err != nil {
		return err
	}
	t.last.Store(at)
	t.lastStamp.Store(recStamp)
	t.lastEnd = end
	t.state.Store(stPrecommitted)

	// All waits are against the transaction's own log: in multi-log
	// mode the flush limiter guarantees the home log cannot harden the
	// commit record before every cross-log dependency of the
	// transaction's updates is durable, so the home durable horizon is
	// the commit's full durability condition (invariant 6).
	lm := t.eng.waitLM(t.home)

	switch mode {
	case CommitSync:
		// Traditional: hold locks across the flush.
		err := lm.WaitDurable(end)
		t.locker.ReleaseAll()
		t.finishCommit(err == nil)
		if whenDone != nil {
			whenDone(err)
		}
		return err

	case CommitSyncELR:
		// ELR: dependants may acquire our locks while we await the flush.
		t.locker.ReleaseAll()
		err := lm.WaitDurable(end)
		t.finishCommit(err == nil)
		if whenDone != nil {
			whenDone(err)
		}
		return err

	case CommitAsync:
		// Unsafe: reply before durability (lost on crash). The txn must
		// stay in the ATT until the commit record hardens, though: the
		// truncation horizon treats ATT absence as "durably finished",
		// and recycling this txn's records while it can still come back
		// as a recovery loser would leave its undo chain unreadable.
		t.locker.ReleaseAll()
		lm.OnDurable(end, func(err error) { t.finishCommit(err == nil) })
		if whenDone != nil {
			whenDone(nil)
		}
		return nil

	case CommitPipelined:
		// ELR + detach: the agent thread is free immediately; the log
		// daemon completes the transaction when the record hardens.
		t.locker.ReleaseAll()
		lm.OnDurable(end, func(err error) {
			t.finishCommit(err == nil)
			if whenDone != nil {
				whenDone(err)
			}
		})
		return nil

	case CommitPipelinedHoldLocks:
		// Ablation: detach but keep locks until durability. Demonstrates
		// the log-induced lock contention ELR exists to remove. The
		// release runs on the daemon goroutine, so it must bypass the
		// agent's (single-threaded) lock cache.
		lm.OnDurable(end, func(err error) {
			t.locker.ReleaseAllToTable()
			t.finishCommit(err == nil)
			if whenDone != nil {
				whenDone(err)
			}
		})
		return nil
	}
	return fmt.Errorf("txn: unknown commit mode %d", int(mode))
}

// finishCommit completes post-commit bookkeeping.
func (t *Txn) finishCommit(ok bool) {
	if ok {
		t.state.Store(stCommitted)
		t.eng.stats.Commits.Inc()
	} else {
		t.state.Store(stAborted)
		t.eng.stats.Aborts.Inc()
	}
	t.eng.attRemove(t.id)
}

// Abort rolls the transaction back: walk the undo chain newest-first,
// apply inverses, and log a CLR for each so a crash mid-rollback resumes
// correctly. Violates-precommit attempts are rejected (ELR condition 2).
func (t *Txn) Abort() error {
	switch t.state.Load() {
	case stActive:
	case stPrecommitted:
		return ErrPrecommitted
	default:
		return ErrTxnDone
	}

	if t.writes > 0 {
		abortRec := logrec.NewAbort(t.id, t.last.Load())
		at, _, _, recStamp, err := t.appendRec(abortRec)
		if err != nil {
			return err
		}
		t.last.Store(at)
		t.lastStamp.Store(recStamp)

		for i := len(t.undo) - 1; i >= 0; i-- {
			e := t.undo[i]
			inv := e.up.Inverse()
			clr := logrec.NewCLR(t.id, t.last.Load(), e.pageID, e.prev, inv)
			at, _, pageStamp, recStamp, err := t.appendRec(clr)
			if err != nil {
				return fmt.Errorf("txn: logging CLR: %w", err)
			}
			t.last.Store(at)
			t.lastStamp.Store(recStamp)
			page, ferr := t.eng.store.Get(e.pageID)
			if ferr != nil {
				return fmt.Errorf("txn: undo fault: %w", ferr)
			}
			if page == nil {
				return fmt.Errorf("txn: undo lost page %d", e.pageID)
			}
			page.Latch.Lock()
			applyErr := page.Apply(inv, pageStamp)
			if applyErr == nil {
				// Mark dirty under the latch: the eviction path decides
				// clean-vs-steal from (pageLSN, DPT) read under the
				// latch, so the two must change together.
				t.eng.store.MarkDirty(e.pageID, recStamp)
			}
			page.Latch.Unlock()
			page.Unpin()
			if applyErr != nil {
				return fmt.Errorf("txn: undo apply: %w", applyErr)
			}
		}
		for i := len(t.indexUndo) - 1; i >= 0; i-- {
			t.indexUndo[i]()
		}
		endRec := logrec.NewEnd(t.id, t.last.Load())
		at, endEnd, _, endStamp, aerr := t.appendRec(endRec)
		t.state.Store(stAborted)
		t.locker.ReleaseAll()
		t.eng.stats.Aborts.Inc()
		if aerr != nil {
			// No end record: stay in the ATT so the txn's first LSN
			// keeps pinning the truncation horizon — a crash must still
			// find the whole undo chain.
			return aerr
		}
		t.last.Store(at)
		t.lastStamp.Store(endStamp)
		// Leave the ATT only once the rollback is durable: until then
		// the txn's first LSN must keep pinning the truncation horizon,
		// or a crash could find a loser whose undo chain was recycled.
		// Capture only what the callback needs, not the whole Txn with
		// its deep-copied undo images.
		eng, id := t.eng, t.id
		t.eng.waitLM(t.home).OnDurable(endEnd, func(error) { eng.attRemove(id) })
		return nil
	}

	t.state.Store(stAborted)
	t.locker.ReleaseAll()
	t.eng.attRemove(t.id)
	t.eng.stats.Aborts.Inc()
	return nil
}
