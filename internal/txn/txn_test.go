package txn

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
)

// row encodes a (key, value) pair per the DefaultKeyOf convention.
func row(key, value uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:8], key)
	binary.LittleEndian.PutUint64(b[8:16], value)
	return b
}

func rowValue(b []byte) uint64 { return binary.LittleEndian.Uint64(b[8:16]) }

// harness bundles an engine over a crashable memory device.
type harness struct {
	dev  *logdev.Mem
	arch *storage.MemArchive
	eng  *Engine
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	dev := logdev.NewMem(logdev.ProfileMemory)
	arch := storage.NewMemArchive()
	lm, err := core.New(core.Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 20},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Log:     lm,
		Locks:   lockmgr.New(lockmgr.Config{DeadlockTimeout: 300 * time.Millisecond, SLI: true}),
		Store:   storage.NewStore(),
		Archive: arch,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{dev: dev, arch: arch, eng: eng}
	t.Cleanup(func() { h.eng.Log().Close() })
	return h
}

func TestCommitAndReadBack(t *testing.T) {
	h := newHarness(t)
	tbl, err := h.eng.CreateTable("accounts", nil)
	if err != nil {
		t.Fatal(err)
	}
	ag := h.eng.NewAgent()
	defer ag.Close()

	tx := ag.Begin()
	for k := uint64(1); k <= 10; k++ {
		if err := tx.Insert(tbl, k, row(k, k*100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}

	tx2 := ag.Begin()
	for k := uint64(1); k <= 10; k++ {
		got, err := tx2.Read(tbl, k)
		if err != nil {
			t.Fatal(err)
		}
		if rowValue(got) != k*100 {
			t.Fatalf("key %d: value %d", k, rowValue(got))
		}
	}
	if err := tx2.Commit(CommitSync, nil); err != nil {
		t.Fatal(err)
	}
	if h.eng.Stats().Commits.Load() != 2 || h.eng.Stats().ReadOnly.Load() != 1 {
		t.Fatalf("stats: %d commits, %d read-only",
			h.eng.Stats().Commits.Load(), h.eng.Stats().ReadOnly.Load())
	}
}

func TestDuplicateAndMissingKeys(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()

	tx := ag.Begin()
	if err := tx.Insert(tbl, 1, row(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, 1, row(1, 2)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup insert: %v", err)
	}
	if _, err := tx.Read(tbl, 99); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing read: %v", err)
	}
	if err := tx.Update(tbl, 99, nil); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing update: %v", err)
	}
	if err := tx.Delete(tbl, 99); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing delete: %v", err)
	}
	tx.Commit(CommitSync, nil)
}

func TestUpdateAndDelete(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()

	tx := ag.Begin()
	tx.Insert(tbl, 7, row(7, 70))
	tx.Commit(CommitSync, nil)

	tx = ag.Begin()
	err := tx.Update(tbl, 7, func(r []byte) ([]byte, error) {
		return row(7, rowValue(r)+5), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit(CommitSync, nil)

	tx = ag.Begin()
	got, _ := tx.Read(tbl, 7)
	if rowValue(got) != 75 {
		t.Fatalf("value %d", rowValue(got))
	}
	if err := tx.Delete(tbl, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(tbl, 7); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("read own delete: %v", err)
	}
	tx.Commit(CommitSync, nil)
}

func TestAbortRollsBack(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()

	seed := ag.Begin()
	seed.Insert(tbl, 1, row(1, 100))
	seed.Insert(tbl, 2, row(2, 200))
	seed.Commit(CommitSync, nil)

	tx := ag.Begin()
	tx.Update(tbl, 1, func(r []byte) ([]byte, error) { return row(1, 999), nil })
	tx.Delete(tbl, 2)
	tx.Insert(tbl, 3, row(3, 300))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	check := ag.Begin()
	got, err := check.Read(tbl, 1)
	if err != nil || rowValue(got) != 100 {
		t.Fatalf("update not rolled back: %d %v", rowValue(got), err)
	}
	got, err = check.Read(tbl, 2)
	if err != nil || rowValue(got) != 200 {
		t.Fatalf("delete not rolled back: %v", err)
	}
	if _, err := check.Read(tbl, 3); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("insert not rolled back: %v", err)
	}
	check.Commit(CommitSync, nil)
	if h.eng.Stats().Aborts.Load() != 1 {
		t.Fatalf("aborts: %d", h.eng.Stats().Aborts.Load())
	}
}

func TestAbortAfterPrecommitForbidden(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	tx.Insert(tbl, 1, row(1, 1))
	done := make(chan error, 1)
	if err := tx.Commit(CommitPipelined, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	// The transaction is precommitted (maybe even durable): abort must
	// be rejected (ELR condition 2).
	if err := tx.Abort(); !errors.Is(err, ErrPrecommitted) && !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after precommit: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestOperationsOnFinishedTxn(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	tx.Insert(tbl, 1, row(1, 1))
	tx.Commit(CommitSync, nil)
	if err := tx.Insert(tbl, 2, row(2, 2)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("insert after commit: %v", err)
	}
	if err := tx.Commit(CommitSync, nil); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestAllCommitModes(t *testing.T) {
	modes := []CommitMode{
		CommitSync, CommitSyncELR, CommitAsync,
		CommitPipelined, CommitPipelinedHoldLocks,
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t)
			tbl, _ := h.eng.CreateTable("t", nil)
			ag := h.eng.NewAgent()
			defer ag.Close()

			var wg sync.WaitGroup
			for k := uint64(1); k <= 20; k++ {
				tx := ag.Begin()
				if err := tx.Insert(tbl, k, row(k, k)); err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				if err := tx.Commit(mode, func(err error) {
					if err != nil {
						t.Errorf("commit callback: %v", err)
					}
					wg.Done()
				}); err != nil {
					t.Fatal(err)
				}
			}
			wg.Wait()
			check := ag.Begin()
			for k := uint64(1); k <= 20; k++ {
				if _, err := check.Read(tbl, k); err != nil {
					t.Fatalf("mode %v key %d: %v", mode, k, err)
				}
			}
			check.Commit(CommitSync, nil)
		})
	}
}

// TestTransferInvariant runs concurrent balance transfers under every
// safe commit mode and checks that money is conserved — the classic
// atomicity + isolation test.
func TestTransferInvariant(t *testing.T) {
	modes := []CommitMode{CommitSync, CommitSyncELR, CommitPipelined}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			h := newHarness(t)
			tbl, _ := h.eng.CreateTable("bank", nil)
			const accounts = 20
			const initial = 1000
			seedAg := h.eng.NewAgent()
			seed := seedAg.Begin()
			for k := uint64(1); k <= accounts; k++ {
				seed.Insert(tbl, k, row(k, initial))
			}
			if err := seed.Commit(CommitSync, nil); err != nil {
				t.Fatal(err)
			}
			seedAg.Close()

			const workers = 8
			const perW = 60
			var wg sync.WaitGroup
			var done sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ag := h.eng.NewAgent()
					defer ag.Close()
					rng := uint64(w)*2654435761 + 1
					for i := 0; i < perW; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						from := rng%accounts + 1
						to := (rng>>16)%accounts + 1
						if from == to {
							continue
						}
						tx := ag.Begin()
						err := tx.Update(tbl, from, func(r []byte) ([]byte, error) {
							return row(from, rowValue(r)-10), nil
						})
						if err == nil {
							err = tx.Update(tbl, to, func(r []byte) ([]byte, error) {
								return row(to, rowValue(r)+10), nil
							})
						}
						if err != nil {
							// Deadlock timeout: abort and move on.
							if aerr := tx.Abort(); aerr != nil {
								t.Errorf("abort: %v", aerr)
							}
							continue
						}
						done.Add(1)
						if err := tx.Commit(mode, func(error) { done.Done() }); err != nil {
							t.Errorf("commit: %v", err)
						}
					}
				}(w)
			}
			wg.Wait()
			done.Wait()

			check := h.eng.NewAgent()
			defer check.Close()
			tx := check.Begin()
			var sum uint64
			for k := uint64(1); k <= accounts; k++ {
				r, err := tx.Read(tbl, k)
				if err != nil {
					t.Fatal(err)
				}
				sum += rowValue(r)
			}
			tx.Commit(CommitSync, nil)
			if sum != accounts*initial {
				t.Fatalf("money not conserved: sum=%d want %d", sum, accounts*initial)
			}
		})
	}
}

func TestCheckpointRuns(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.eng.CreateTable("t", nil)
	ag := h.eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	for k := uint64(1); k <= 50; k++ {
		tx.Insert(tbl, k, row(k, k))
	}
	tx.Commit(CommitSync, nil)
	if err := h.eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The archive received the dirty pages and the DPT drained.
	if pages, err := h.arch.Pages(); err != nil || len(pages) == 0 {
		t.Fatalf("checkpoint archived nothing (%v)", err)
	}
	if len(h.eng.Store().DirtyPages()) != 0 {
		t.Fatal("DPT not drained by checkpoint")
	}
	if h.eng.Stats().Checkpoints.Load() != 1 {
		t.Fatal("checkpoint not counted")
	}
}

func TestCommitModeString(t *testing.T) {
	if CommitPipelined.String() != "pipelined" || CommitMode(99).String() != "mode(99)" {
		t.Fatal("mode names wrong")
	}
}
