package vfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrPowerCut is returned by every operation on a FaultFS that has
// suffered a simulated power cut, until Recover is called. File
// handles opened before the cut stay dead even after Recover — the
// "process" that held them did not survive.
var ErrPowerCut = errors.New("vfs: simulated power cut")

// ErrInjected is the default error returned by a fault rule whose Err
// field is nil.
var ErrInjected = errors.New("vfs: injected I/O error")

// Op names a filesystem operation class for fault-rule matching and
// the op trace.
type Op string

// Operation classes. OpWrite covers both positional WriteAt and
// sequential Write; OpRead covers ReadAt and ReadFile's body read.
const (
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
	OpReadDir  Op = "readdir"
	OpStat     Op = "stat"
	OpSyncDir  Op = "syncdir"
)

// Rule is a deterministic fault trigger: on the matchCount-th
// operation whose op, directory and base name all match, inject an
// error or a power cut.
type Rule struct {
	// Op selects the operation class; empty matches every op.
	Op Op
	// Dir, when non-empty, must equal the operation path's parent
	// directory (for Rename, the new name's parent). This
	// disambiguates e.g. hot-log segments from archived copies, which
	// share the "*.seg" base-name shape.
	Dir string
	// Path is a path.Match glob applied to the operation path's base
	// name; empty matches every name.
	Path string
	// After is the number of matching operations to let through
	// unharmed before the rule starts firing. 0 fires on the first
	// match.
	After int
	// Times bounds how many matches fire once the rule is active: a
	// transient fault. 0 means unbounded (a permanent fault).
	Times int
	// Err is the injected error; nil defaults to ErrInjected. Ignored
	// when Cut is set.
	Err error
	// Cut triggers a simulated power cut instead of an error return.
	// For write ops the triggering write reaches the (volatile) page
	// cache first, so it becomes the torn-write candidate.
	Cut bool
}

// RuleStat reports a rule's match and fire counters.
type RuleStat struct {
	// Rule is the rule these counters belong to.
	Rule Rule
	// Matched counts operations that matched the op/dir/path triggers.
	Matched int
	// Fired counts matches that actually injected a fault.
	Fired int
}

// TraceEntry is one record in the bounded operation trace.
type TraceEntry struct {
	// Seq is the operation's global sequence number.
	Seq uint64
	// Op is the operation class.
	Op Op
	// Path is the primary path the operation touched (for Rename, the
	// new name).
	Path string
	// Off is the byte offset of a read/write/truncate, -1 otherwise.
	Off int64
	// Len is the byte count of a read/write, 0 otherwise.
	Len int
	// Err is the operation's outcome (nil on success).
	Err error
}

// String renders the entry for failure-repro logs.
func (t TraceEntry) String() string {
	s := fmt.Sprintf("#%d %s %s", t.Seq, t.Op, t.Path)
	if t.Op == OpRead || t.Op == OpWrite {
		s += fmt.Sprintf(" off=%d len=%d", t.Off, t.Len)
	}
	if t.Err != nil {
		s += " err=" + t.Err.Error()
	}
	return s
}

const traceCap = 512

// fnode is an in-memory inode: the durable image (synced) and the
// volatile image (data) that ordinary reads and writes see. Sync
// promotes data to synced; a power cut reverts data to synced, except
// that the last unsynced write may tear in at sector granularity.
type fnode struct {
	synced []byte
	data   []byte
	// lastWrite is the most recent unsynced write's extent (tearing
	// candidate); nil after Sync or when no write happened.
	lastOff int64
	lastLen int
	hasLast bool
}

// nsOp is a pending (not yet dir-fsynced) namespace mutation with its
// undo. Power cut undoes pending ops in reverse order; SyncDir
// commits the ops pending against one directory.
type nsOp struct {
	dir  string
	undo func(f *FaultFS)
}

// FaultFS is a deterministic, fully in-memory filesystem implementing
// strict POSIX crash semantics:
//
//   - File writes are volatile until File.Sync; a power cut reverts
//     each file to its last-synced image, optionally tearing the last
//     unsynced write at sector granularity (seeded, or driven by a
//     TearMask hook for table-driven tests).
//   - Namespace changes (create, rename, remove) are volatile until
//     SyncDir on the parent directory; a power cut rolls pending ones
//     back in reverse order. Syncing a file does NOT persist its
//     directory entry, exactly as on ext4/xfs with default mounts.
//   - Fault rules inject seeded transient or permanent errors, or a
//     power cut, at the Nth operation matching an (op, dir, base-glob)
//     trigger, with match/fire counters exposed for assertions.
//   - A bounded trace of recent operations supports failure repro.
//
// Directories are durable upon creation — a deliberate simplification
// (MkdirAll happens once at setup in every caller, never on a crash
// path worth modelling).
//
// All methods are safe for concurrent use.
type FaultFS struct {
	mu sync.Mutex

	// SectorSize is the tearing granularity in bytes. Set before use;
	// defaults to 512.
	sectorSize int
	// tornWrites enables tearing the last unsynced write on power cut;
	// when false the write is dropped whole.
	tornWrites bool
	// tearMask, when non-nil, overrides the seeded RNG: it receives
	// the file path and per-sector count of the last unsynced write
	// and returns which sectors persist. Used by table-driven tests.
	tearMask func(path string, sectors int) []bool

	rng    *rand.Rand
	files  map[string]*fnode
	dirs   map[string]bool
	pend   []nsOp
	frozen bool
	gen    uint64
	cuts   int

	rules []*ruleState
	ops   map[Op]int64

	trace    []TraceEntry
	traceSeq uint64
}

type ruleState struct {
	r       Rule
	matched int
	fired   int
}

// NewFaultFS returns an empty FaultFS whose tearing decisions are
// driven by seed. The root directory "/" exists.
func NewFaultFS(seed int64) *FaultFS {
	return &FaultFS{
		sectorSize: 512,
		rng:        rand.New(rand.NewSource(seed)),
		files:      make(map[string]*fnode),
		dirs:       map[string]bool{"/": true},
		ops:        make(map[Op]int64),
	}
}

// SetSectorSize sets the tearing granularity (bytes). Small values
// (e.g. 4) let tests tear sub-512-byte structures such as the 16-byte
// watermark slots.
func (f *FaultFS) SetSectorSize(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > 0 {
		f.sectorSize = n
	}
}

// SetTornWrites enables or disables sector tearing of the last
// unsynced write on power cut. Disabled, the write drops whole.
func (f *FaultFS) SetTornWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornWrites = on
}

// SetTearMask installs a deterministic tearing hook for table-driven
// tests: fn receives the file path and the sector count of the last
// unsynced write, and returns which sectors persist. nil restores the
// seeded RNG behaviour.
func (f *FaultFS) SetTearMask(fn func(path string, sectors int) []bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearMask = fn
}

// AddRule arms a fault rule and returns its index for RuleStats.
func (f *FaultFS) AddRule(r Rule) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &ruleState{r: r})
	return len(f.rules) - 1
}

// ClearRules disarms all fault rules.
func (f *FaultFS) ClearRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// RuleStats returns the match/fire counters of every armed rule, in
// AddRule order.
func (f *FaultFS) RuleStats() []RuleStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RuleStat, len(f.rules))
	for i, rs := range f.rules {
		out[i] = RuleStat{Rule: rs.r, Matched: rs.matched, Fired: rs.fired}
	}
	return out
}

// OpCounts returns the total number of operations seen per class,
// including ones that failed or were refused.
func (f *FaultFS) OpCounts() map[Op]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int64, len(f.ops))
	for k, v := range f.ops {
		out[k] = v
	}
	return out
}

// Trace returns the most recent operations, oldest first, capped at
// an internal bound. Use it to reproduce and report fault scenarios.
func (f *FaultFS) Trace() []TraceEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TraceEntry, len(f.trace))
	copy(out, f.trace)
	return out
}

// Cuts reports how many power cuts this FaultFS has suffered.
func (f *FaultFS) Cuts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cuts
}

// PowerCut simulates sudden power loss: every subsequent operation —
// including ones on already-open files — fails with ErrPowerCut until
// Recover is called.
func (f *FaultFS) PowerCut() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cut()
}

func (f *FaultFS) cut() {
	if f.frozen {
		return
	}
	f.frozen = true
	f.cuts++
}

// Recover models the machine coming back up: pending namespace
// operations roll back in reverse order, every file's volatile image
// reverts to its last-synced bytes (with the last unsynced write
// optionally torn in at sector granularity), and the filesystem
// accepts operations again. Handles opened before the cut stay dead.
func (f *FaultFS) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.frozen {
		return
	}
	for i := len(f.pend) - 1; i >= 0; i-- {
		f.pend[i].undo(f)
	}
	f.pend = nil
	for p, n := range f.files {
		f.revert(p, n)
	}
	f.frozen = false
	f.gen++
}

// revert rolls a file's volatile image back to its synced bytes,
// tearing the last unsynced write in at sector granularity when
// enabled.
func (f *FaultFS) revert(path string, n *fnode) {
	if f.tornWrites && n.hasLast && n.lastLen > 0 {
		sectors := (n.lastLen + f.sectorSize - 1) / f.sectorSize
		var keep []bool
		if f.tearMask != nil {
			keep = f.tearMask(path, sectors)
		} else {
			keep = make([]bool, sectors)
			for i := range keep {
				keep[i] = f.rng.Intn(2) == 0
			}
		}
		img := append([]byte(nil), n.synced...)
		for s := 0; s < sectors && s < len(keep); s++ {
			if !keep[s] {
				continue
			}
			off := n.lastOff + int64(s*f.sectorSize)
			end := off + int64(f.sectorSize)
			if max := n.lastOff + int64(n.lastLen); end > max {
				end = max
			}
			if int64(len(img)) < end {
				img = append(img, make([]byte, end-int64(len(img)))...)
			}
			copy(img[off:end], n.data[off:end])
		}
		n.synced = img
	}
	n.data = append([]byte(nil), n.synced...)
	n.hasLast = false
}

// record appends to the bounded op trace. Caller holds mu.
func (f *FaultFS) record(op Op, path string, off int64, length int, err error) {
	f.ops[op]++
	f.traceSeq++
	e := TraceEntry{Seq: f.traceSeq, Op: op, Path: path, Off: off, Len: length, Err: err}
	if len(f.trace) == traceCap {
		copy(f.trace, f.trace[1:])
		f.trace[traceCap-1] = e
	} else {
		f.trace = append(f.trace, e)
	}
}

// check runs the fault rules for one operation. It returns the
// injected error (nil if none fired) and whether a power cut should
// happen after the operation's mutation is applied — true only for
// Cut rules on write-class ops, so the triggering write lands in the
// volatile image and becomes the tearing candidate. Caller holds mu.
func (f *FaultFS) check(op Op, path string) (error, bool) {
	for _, rs := range f.rules {
		if rs.r.Op != "" && rs.r.Op != op {
			continue
		}
		if rs.r.Dir != "" && filepath.Dir(path) != filepath.Clean(rs.r.Dir) {
			continue
		}
		if rs.r.Path != "" {
			ok, _ := filepath.Match(rs.r.Path, filepath.Base(path))
			if !ok {
				continue
			}
		}
		rs.matched++
		if rs.matched <= rs.r.After {
			continue
		}
		if rs.r.Times > 0 && rs.fired >= rs.r.Times {
			continue
		}
		rs.fired++
		if rs.r.Cut {
			if op == OpWrite || op == OpTruncate {
				return nil, true
			}
			f.cut()
			return ErrPowerCut, false
		}
		if rs.r.Err != nil {
			return rs.r.Err, false
		}
		return ErrInjected, false
	}
	return nil, false
}

// enter is the common op prologue: frozen check, trace, rules.
// Returns (injectErr, cutAfter). Caller holds mu.
func (f *FaultFS) enter(op Op, path string, off int64, length int) (error, bool) {
	if f.frozen {
		f.record(op, path, off, length, ErrPowerCut)
		return ErrPowerCut, false
	}
	err, cutAfter := f.check(op, path)
	f.record(op, path, off, length, err)
	return err, cutAfter
}

func patherr(op Op, path string, err error) error {
	return &os.PathError{Op: string(op), Path: path, Err: err}
}

// OpenFile implements FS. The parent directory must exist; O_CREATE,
// O_EXCL and O_TRUNC behave as in the os package. Creation and
// truncation are namespace/content mutations with the usual
// volatile-until-synced semantics.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err, _ := f.enter(OpOpen, name, 0, 0); err != nil {
		return nil, patherr(OpOpen, name, err)
	}
	if f.dirs[name] {
		return nil, patherr(OpOpen, name, errors.New("is a directory"))
	}
	n, ok := f.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, patherr(OpOpen, name, os.ErrNotExist)
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, patherr(OpOpen, name, os.ErrExist)
	case !ok:
		if !f.dirs[filepath.Dir(name)] {
			return nil, patherr(OpOpen, name, os.ErrNotExist)
		}
		n = &fnode{}
		f.files[name] = n
		created := name
		f.pend = append(f.pend, nsOp{dir: filepath.Dir(name), undo: func(f *FaultFS) {
			delete(f.files, created)
		}})
	}
	if flag&os.O_TRUNC != 0 {
		n.data = nil
		n.hasLast = false
	}
	h := &faultFile{fs: f, path: name, n: n, gen: f.gen}
	if flag&os.O_APPEND != 0 {
		h.off = int64(len(n.data))
	}
	return h, nil
}

// Rename implements FS: atomic replace, volatile until SyncDir on the
// new name's parent. A crash before that sync restores the old name
// and any overwritten target.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	if err, _ := f.enter(OpRename, newname, 0, 0); err != nil {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: err}
	}
	src, ok := f.files[oldname]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: os.ErrNotExist}
	}
	if !f.dirs[filepath.Dir(newname)] {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: os.ErrNotExist}
	}
	overwritten, had := f.files[newname]
	delete(f.files, oldname)
	f.files[newname] = src
	on, nn := oldname, newname
	f.pend = append(f.pend, nsOp{dir: filepath.Dir(newname), undo: func(f *FaultFS) {
		f.files[on] = src
		if had {
			f.files[nn] = overwritten
		} else {
			delete(f.files, nn)
		}
	}})
	return nil
}

// Remove implements FS: the unlink is volatile until SyncDir on the
// parent; a crash before that sync restores the file.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err, _ := f.enter(OpRemove, name, 0, 0); err != nil {
		return patherr(OpRemove, name, err)
	}
	return f.removeLocked(name)
}

func (f *FaultFS) removeLocked(name string) error {
	if n, ok := f.files[name]; ok {
		delete(f.files, name)
		f.pend = append(f.pend, nsOp{dir: filepath.Dir(name), undo: func(f *FaultFS) {
			f.files[name] = n
		}})
		return nil
	}
	if f.dirs[name] {
		for p := range f.files {
			if filepath.Dir(p) == name {
				return patherr(OpRemove, name, errors.New("directory not empty"))
			}
		}
		delete(f.dirs, name)
		f.pend = append(f.pend, nsOp{dir: filepath.Dir(name), undo: func(f *FaultFS) {
			f.dirs[name] = true
		}})
		return nil
	}
	return patherr(OpRemove, name, os.ErrNotExist)
}

// RemoveAll implements FS by removing the named tree, deepest entries
// first. Each unlink is individually volatile until the relevant
// directory syncs.
func (f *FaultFS) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path = filepath.Clean(path)
	if err, _ := f.enter(OpRemove, path, 0, 0); err != nil {
		return patherr(OpRemove, path, err)
	}
	var victims []string
	for p := range f.files {
		if p == path || strings.HasPrefix(p, path+string(filepath.Separator)) {
			victims = append(victims, p)
		}
	}
	var dirVictims []string
	for d := range f.dirs {
		if d == path || strings.HasPrefix(d, path+string(filepath.Separator)) {
			dirVictims = append(dirVictims, d)
		}
	}
	for _, p := range victims {
		if err := f.removeLocked(p); err != nil {
			return err
		}
	}
	// Deepest directories first so "not empty" checks pass.
	sort.Slice(dirVictims, func(i, j int) bool { return len(dirVictims[i]) > len(dirVictims[j]) })
	for _, d := range dirVictims {
		if err := f.removeLocked(d); err != nil {
			return err
		}
	}
	return nil
}

// MkdirAll implements FS. Created directories are durable immediately
// — a documented simplification: every caller creates its directories
// once at setup, never on a crash path.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path = filepath.Clean(path)
	if err, _ := f.enter(OpMkdir, path, 0, 0); err != nil {
		return patherr(OpMkdir, path, err)
	}
	if f.files[path] != nil {
		return patherr(OpMkdir, path, errors.New("not a directory"))
	}
	for p := path; ; p = filepath.Dir(p) {
		f.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// ReadDir implements FS, listing files and subdirectories in name
// order. Entries reflect the volatile namespace, as a live process
// would see it.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err, _ := f.enter(OpReadDir, name, 0, 0); err != nil {
		return nil, patherr(OpReadDir, name, err)
	}
	if !f.dirs[name] {
		return nil, patherr(OpReadDir, name, os.ErrNotExist)
	}
	var out []os.DirEntry
	for p, n := range f.files {
		if filepath.Dir(p) == name {
			out = append(out, &faultDirEntry{name: filepath.Base(p), size: int64(len(n.data))})
		}
	}
	for d := range f.dirs {
		if d != name && filepath.Dir(d) == name {
			out = append(out, &faultDirEntry{name: filepath.Base(d), dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// Stat implements FS against the volatile namespace.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err, _ := f.enter(OpStat, name, 0, 0); err != nil {
		return nil, patherr(OpStat, name, err)
	}
	if n, ok := f.files[name]; ok {
		return &faultFileInfo{name: filepath.Base(name), size: int64(len(n.data))}, nil
	}
	if f.dirs[name] {
		return &faultFileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, patherr(OpStat, name, os.ErrNotExist)
}

// ReadFile implements FS, returning a copy of the volatile contents.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if err, _ := f.enter(OpRead, name, 0, -1); err != nil {
		return nil, patherr(OpRead, name, err)
	}
	n, ok := f.files[name]
	if !ok {
		return nil, patherr(OpRead, name, os.ErrNotExist)
	}
	return append([]byte(nil), n.data...), nil
}

// SyncDir implements FS: all pending namespace operations in dir
// become durable (they survive a power cut).
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if err, _ := f.enter(OpSyncDir, dir, 0, 0); err != nil {
		return patherr(OpSyncDir, dir, err)
	}
	if !f.dirs[dir] {
		return patherr(OpSyncDir, dir, os.ErrNotExist)
	}
	kept := f.pend[:0]
	for _, op := range f.pend {
		if op.dir != dir {
			kept = append(kept, op)
		}
	}
	f.pend = kept
	return nil
}

var _ FS = (*FaultFS)(nil)

// faultFile is an open handle on a FaultFS file. It dies with the
// generation it was opened in: after a power cut + Recover, leftover
// handles keep failing, like fds of a dead process.
type faultFile struct {
	fs     *FaultFS
	path   string
	n      *fnode
	gen    uint64
	off    int64
	closed bool
}

// stale reports whether the handle outlived its filesystem
// generation or was closed. Caller holds fs.mu.
func (h *faultFile) stale() error {
	if h.closed {
		return os.ErrClosed
	}
	if h.gen != h.fs.gen {
		return ErrPowerCut
	}
	return nil
}

// ReadAt implements io.ReaderAt with standard partial-read + io.EOF
// semantics against the volatile image.
func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return 0, patherr(OpRead, h.path, err)
	}
	if err, _ := h.fs.enter(OpRead, h.path, off, len(p)); err != nil {
		return 0, patherr(OpRead, h.path, err)
	}
	if off >= int64(len(h.n.data)) {
		return 0, io.EOF
	}
	nn := copy(p, h.n.data[off:])
	if nn < len(p) {
		return nn, io.EOF
	}
	return nn, nil
}

// WriteAt implements io.WriterAt into the volatile image; the write
// becomes the file's torn-write candidate until the next Sync.
func (h *faultFile) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return 0, patherr(OpWrite, h.path, err)
	}
	err, cutAfter := h.fs.enter(OpWrite, h.path, off, len(p))
	if err != nil {
		return 0, patherr(OpWrite, h.path, err)
	}
	h.writeLocked(p, off)
	if cutAfter {
		h.fs.cut()
		return 0, patherr(OpWrite, h.path, ErrPowerCut)
	}
	return len(p), nil
}

// writeLocked applies a write to the volatile image and records it as
// the tearing candidate. Caller holds fs.mu.
func (h *faultFile) writeLocked(p []byte, off int64) {
	end := off + int64(len(p))
	if int64(len(h.n.data)) < end {
		h.n.data = append(h.n.data, make([]byte, end-int64(len(h.n.data)))...)
	}
	copy(h.n.data[off:end], p)
	h.n.lastOff, h.n.lastLen, h.n.hasLast = off, len(p), true
}

// Write implements sequential io.Writer at the handle's offset.
func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return 0, patherr(OpWrite, h.path, err)
	}
	err, cutAfter := h.fs.enter(OpWrite, h.path, h.off, len(p))
	if err != nil {
		return 0, patherr(OpWrite, h.path, err)
	}
	h.writeLocked(p, h.off)
	h.off += int64(len(p))
	if cutAfter {
		h.fs.cut()
		return 0, patherr(OpWrite, h.path, ErrPowerCut)
	}
	return len(p), nil
}

// Sync promotes the volatile image to the durable one. It does not
// make the file's directory entry durable.
func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return patherr(OpSync, h.path, err)
	}
	if err, _ := h.fs.enter(OpSync, h.path, 0, 0); err != nil {
		return patherr(OpSync, h.path, err)
	}
	h.n.synced = append([]byte(nil), h.n.data...)
	h.n.hasLast = false
	return nil
}

// Truncate resizes the volatile image; like any write it is lost on a
// power cut unless synced first (the journal-retirement pattern).
func (h *faultFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return patherr(OpTruncate, h.path, err)
	}
	err, cutAfter := h.fs.enter(OpTruncate, h.path, size, 0)
	if err != nil {
		return patherr(OpTruncate, h.path, err)
	}
	if cutAfter {
		h.fs.cut()
		return patherr(OpTruncate, h.path, ErrPowerCut)
	}
	if size <= int64(len(h.n.data)) {
		h.n.data = h.n.data[:size]
	} else {
		h.n.data = append(h.n.data, make([]byte, size-int64(len(h.n.data)))...)
	}
	h.n.hasLast = false
	return nil
}

// Stat reports the handle's volatile size.
func (h *faultFile) Stat() (os.FileInfo, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return nil, patherr(OpStat, h.path, err)
	}
	if err, _ := h.fs.enter(OpStat, h.path, 0, 0); err != nil {
		return nil, patherr(OpStat, h.path, err)
	}
	return &faultFileInfo{name: filepath.Base(h.path), size: int64(len(h.n.data))}, nil
}

// Close invalidates the handle. Closing is never faulted — a real
// close of an already-written fd cannot lose data that fsync promised.
func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	h.fs.record(OpClose, h.path, 0, 0, nil)
	return nil
}

var _ File = (*faultFile)(nil)

// faultFileInfo implements os.FileInfo for FaultFS entries.
type faultFileInfo struct {
	name string
	size int64
	dir  bool
}

// Name implements os.FileInfo.
func (i *faultFileInfo) Name() string { return i.name }

// Size implements os.FileInfo.
func (i *faultFileInfo) Size() int64 { return i.size }

// Mode implements os.FileInfo.
func (i *faultFileInfo) Mode() iofs.FileMode {
	if i.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}

// ModTime implements os.FileInfo; FaultFS does not track times.
func (i *faultFileInfo) ModTime() time.Time { return time.Time{} }

// IsDir implements os.FileInfo.
func (i *faultFileInfo) IsDir() bool { return i.dir }

// Sys implements os.FileInfo.
func (i *faultFileInfo) Sys() any { return nil }

// faultDirEntry implements os.DirEntry for ReadDir listings.
type faultDirEntry struct {
	name string
	size int64
	dir  bool
}

// Name implements os.DirEntry.
func (e *faultDirEntry) Name() string { return e.name }

// IsDir implements os.DirEntry.
func (e *faultDirEntry) IsDir() bool { return e.dir }

// Type implements os.DirEntry.
func (e *faultDirEntry) Type() iofs.FileMode {
	if e.dir {
		return iofs.ModeDir
	}
	return 0
}

// Info implements os.DirEntry.
func (e *faultDirEntry) Info() (iofs.FileInfo, error) {
	return &faultFileInfo{name: e.name, size: e.size, dir: e.dir}, nil
}
