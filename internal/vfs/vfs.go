// Package vfs abstracts the filesystem the durable layers sit on: a
// small interface covering exactly the operations the log device, the
// page archive and the cold store perform, with two implementations —
// the passthrough OS filesystem used in production, and a deterministic
// fault-injecting filesystem (FaultFS) that models strict POSIX crash
// semantics for tests and the crash-storm soak harness.
//
// The interface is deliberately narrow. Every durable structure in the
// engine is built from the same few primitives — positional file I/O,
// fsync, rename-into-place, directory fsync — and the crash-ordering
// invariants (ARCHITECTURE.md "Fsync-ordering invariants") are stated
// in terms of them. Threading vfs.FS through fsutil, logdev and
// storage lets one fault model exercise every layer.
package vfs

import (
	"io"
	"os"
)

// File is an open file: positional reads and writes, durability, and
// sequential Write for the write-whole-file helpers. *os.File
// implements it natively.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	io.Closer
	// Sync flushes the file's written bytes to stable storage. It does
	// NOT persist the file's directory entry — that is SyncDir's job,
	// exactly as on a real POSIX filesystem.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Stat returns the file's metadata (the durable layers use Size).
	Stat() (os.FileInfo, error)
}

// FS is the filesystem the durable layers run on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (O_RDWR, O_CREATE,
	// O_TRUNC, O_RDONLY and O_WRONLY are the flags the engine uses).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname's file. The new
	// directory entry is durable only after SyncDir on the parent.
	Rename(oldname, newname string) error
	// Remove unlinks a file.
	Remove(name string) error
	// RemoveAll removes a whole tree (legacy-archive cleanup).
	RemoveAll(path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat returns file or directory metadata.
	Stat(name string) (os.FileInfo, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory, making creates, renames and removals
	// in it durable. fsync of a file does not persist its directory
	// entry; every crash-ordering protocol that installs files must
	// also sync the directory before relying on them.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem — the production
// implementation.
type OS struct{}

// OpenFile implements FS via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS via os.Rename.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// RemoveAll implements FS via os.RemoveAll.
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// MkdirAll implements FS via os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS via os.ReadDir.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS via os.Stat.
func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// ReadFile implements FS via os.ReadFile.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// SyncDir implements FS by opening and fsyncing the directory.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

var _ FS = OS{}
