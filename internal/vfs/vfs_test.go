package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, fs FS, path string, flag int) File {
	t.Helper()
	f, err := fs.OpenFile(path, flag, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	return f
}

func writeAt(t *testing.T, f File, b []byte, off int64) {
	t.Helper()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

func readAll(t *testing.T, fs FS, path string) []byte {
	t.Helper()
	b, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	return b
}

// TestFaultFSUnsyncedWritesDrop is the core crash model: synced bytes
// survive a power cut, unsynced bytes vanish.
func TestFaultFSUnsyncedWritesDrop(t *testing.T) {
	fs := NewFaultFS(1)
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f := mustOpen(t, fs, "/d/a", os.O_CREATE|os.O_RDWR)
	writeAt(t, f, []byte("durable"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.SyncDir("/d") // commit the create
	writeAt(t, f, []byte("volatile"), 7)

	fs.PowerCut()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut: err=%v, want ErrPowerCut", err)
	}
	fs.Recover()

	if got := string(readAll(t, fs, "/d/a")); got != "durable" {
		t.Fatalf("after crash: %q, want only the synced prefix %q", got, "durable")
	}
	// The old handle died with the incarnation.
	if _, err := f.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("pre-crash handle still usable after recover")
	}
}

// TestFaultFSUnsyncedCreateRollsBack checks namespace volatility: a
// created file needs its parent directory synced to survive.
func TestFaultFSUnsyncedCreateRollsBack(t *testing.T) {
	fs := NewFaultFS(1)
	fs.MkdirAll("/d", 0o755)
	for _, syncDir := range []bool{false, true} {
		name := "/d/nosync"
		if syncDir {
			name = "/d/withsync"
		}
		f := mustOpen(t, fs, name, os.O_CREATE|os.O_RDWR)
		writeAt(t, f, []byte("x"), 0)
		f.Sync()
		f.Close()
		if syncDir {
			if err := fs.SyncDir("/d"); err != nil {
				t.Fatal(err)
			}
		}
		fs.PowerCut()
		fs.Recover()
		_, err := fs.Stat(name)
		if syncDir && err != nil {
			t.Fatalf("create+file sync+dir sync lost across crash: %v", err)
		}
		if !syncDir && err == nil {
			t.Fatal("create without parent-dir sync survived the crash")
		}
	}
}

// TestFaultFSRenameRollsBack checks the install idiom: a rename is
// volatile until the parent dir syncs, and rolling it back restores
// an overwritten destination.
func TestFaultFSRenameRollsBack(t *testing.T) {
	fs := NewFaultFS(1)
	fs.MkdirAll("/d", 0o755)
	for _, name := range []string{"/d/dst", "/d/src"} {
		f := mustOpen(t, fs, name, os.O_CREATE|os.O_RDWR)
		writeAt(t, f, []byte(filepath.Base(name)), 0)
		f.Sync()
		f.Close()
	}
	fs.SyncDir("/d")

	if err := fs.Rename("/d/src", "/d/dst"); err != nil {
		t.Fatal(err)
	}
	fs.PowerCut()
	fs.Recover()
	if got := string(readAll(t, fs, "/d/dst")); got != "dst" {
		t.Fatalf("unsynced rename persisted: dst=%q, want original %q", got, "dst")
	}
	if _, err := fs.Stat("/d/src"); err != nil {
		t.Fatalf("rename rollback lost the source: %v", err)
	}

	// Same rename, now committed with a dir sync.
	if err := fs.Rename("/d/src", "/d/dst"); err != nil {
		t.Fatal(err)
	}
	fs.SyncDir("/d")
	fs.PowerCut()
	fs.Recover()
	if got := string(readAll(t, fs, "/d/dst")); got != "src" {
		t.Fatalf("synced rename lost: dst=%q, want %q", got, "src")
	}
	if _, err := fs.Stat("/d/src"); err == nil {
		t.Fatal("synced rename resurrected the source")
	}
}

// TestFaultFSRemoveRollsBack: an unsynced remove comes back after a
// crash with its last-synced contents.
func TestFaultFSRemoveRollsBack(t *testing.T) {
	fs := NewFaultFS(1)
	fs.MkdirAll("/d", 0o755)
	f := mustOpen(t, fs, "/d/a", os.O_CREATE|os.O_RDWR)
	writeAt(t, f, []byte("keep"), 0)
	f.Sync()
	f.Close()
	fs.SyncDir("/d")

	if err := fs.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	fs.PowerCut()
	fs.Recover()
	if got := string(readAll(t, fs, "/d/a")); got != "keep" {
		t.Fatalf("unsynced remove stuck: %q, want %q", got, "keep")
	}
}

// TestFaultFSTornWrite tears the last unsynced write at sector
// granularity under a deterministic mask.
func TestFaultFSTornWrite(t *testing.T) {
	fs := NewFaultFS(1)
	fs.SetSectorSize(4)
	fs.SetTornWrites(true)
	fs.MkdirAll("/d", 0o755)
	f := mustOpen(t, fs, "/d/a", os.O_CREATE|os.O_RDWR)
	writeAt(t, f, []byte("AAAABBBBCCCC"), 0)
	f.Sync()
	fs.SyncDir("/d")

	// One 12-byte overwrite = 3 sectors; keep only the middle one.
	writeAt(t, f, []byte("XXXXYYYYZZZZ"), 0)
	fs.SetTearMask(func(path string, sectors int) []bool {
		if sectors != 3 {
			t.Errorf("tear mask saw %d sectors, want 3", sectors)
		}
		return []bool{false, true, false}
	})
	fs.PowerCut()
	fs.Recover()
	if got := string(readAll(t, fs, "/d/a")); got != "AAAAYYYYCCCC" {
		t.Fatalf("torn image %q, want %q", got, "AAAAYYYYCCCC")
	}
}

// TestFaultFSRules exercises trigger matching: After skips, Times
// limits, counters track, and errors are the configured ones.
func TestFaultFSRules(t *testing.T) {
	fs := NewFaultFS(1)
	fs.MkdirAll("/d", 0o755)
	boom := errors.New("boom")
	id := fs.AddRule(Rule{Op: OpWrite, Dir: "/d", Path: "a*", After: 2, Times: 2, Err: boom})

	f := mustOpen(t, fs, "/d/ax", os.O_CREATE|os.O_RDWR)
	other := mustOpen(t, fs, "/d/b", os.O_CREATE|os.O_RDWR)
	var errs int
	for i := 0; i < 6; i++ {
		if _, err := f.WriteAt([]byte("w"), int64(i)); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("write %d: err=%v, want boom", i, err)
			}
			errs++
		}
		// Non-matching base name never faults.
		if _, err := other.WriteAt([]byte("w"), int64(i)); err != nil {
			t.Fatalf("unmatched write faulted: %v", err)
		}
	}
	if errs != 2 {
		t.Fatalf("rule fired %d times, want 2 (After=2, Times=2)", errs)
	}
	st := fs.RuleStats()[id]
	if st.Matched != 6 || st.Fired != 2 {
		t.Fatalf("stats matched=%d fired=%d, want 6/2", st.Matched, st.Fired)
	}
}

// TestFaultFSCutOnWrite: a Cut rule on a write applies that write
// first — it becomes the torn-tail candidate — then freezes the fs.
func TestFaultFSCutOnWrite(t *testing.T) {
	fs := NewFaultFS(1)
	fs.MkdirAll("/d", 0o755)
	f := mustOpen(t, fs, "/d/a", os.O_CREATE|os.O_RDWR)
	writeAt(t, f, []byte("base"), 0)
	f.Sync()
	fs.SyncDir("/d")

	fs.AddRule(Rule{Op: OpWrite, Dir: "/d", Path: "a", Cut: true})
	if _, err := f.WriteAt([]byte("tail"), 4); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("cut write err=%v, want ErrPowerCut", err)
	}
	if fs.Cuts() != 1 {
		t.Fatalf("cuts=%d, want 1", fs.Cuts())
	}
	fs.Recover()
	// Tearing is off: the cut write drops whole.
	if got := string(readAll(t, fs, "/d/a")); got != "base" {
		t.Fatalf("after cut-on-write: %q, want %q", got, "base")
	}
}

// TestFaultFSTrace confirms the op trace records faults for replay
// diagnostics.
func TestFaultFSTrace(t *testing.T) {
	fs := NewFaultFS(1)
	fs.MkdirAll("/d", 0o755)
	f := mustOpen(t, fs, "/d/a", os.O_CREATE|os.O_RDWR)
	writeAt(t, f, []byte("x"), 0)
	f.Sync()
	var sawWrite, sawSync bool
	for _, e := range fs.Trace() {
		if e.Path != "/d/a" {
			continue
		}
		switch e.Op {
		case OpWrite:
			sawWrite = true
		case OpSync:
			sawSync = true
		}
		if e.String() == "" {
			t.Fatal("empty trace entry rendering")
		}
	}
	if !sawWrite || !sawSync {
		t.Fatalf("trace missing ops: write=%v sync=%v", sawWrite, sawSync)
	}
}

// TestFaultFSReadSemantics checks ReadAt's io semantics match os.File:
// short reads at EOF return io.EOF with the partial count.
func TestFaultFSReadSemantics(t *testing.T) {
	fs := NewFaultFS(1)
	fs.MkdirAll("/d", 0o755)
	f := mustOpen(t, fs, "/d/a", os.O_CREATE|os.O_RDWR)
	writeAt(t, f, []byte("hello"), 0)
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 0)
	if n != 5 || !errors.Is(err, io.EOF) {
		t.Fatalf("short ReadAt = (%d, %v), want (5, io.EOF)", n, err)
	}
	n, err = f.ReadAt(buf[:2], 2)
	if n != 2 || err != nil {
		t.Fatalf("inner ReadAt = (%d, %v), want (2, nil)", n, err)
	}
}

// TestOSPassthrough sanity-checks the production FS against a real
// temp dir: write, sync, dir-sync, rename, read back.
func TestOSPassthrough(t *testing.T) {
	fs := OS{}
	dir := t.TempDir()
	p := filepath.Join(dir, "a.tmp")
	f, err := fs.OpenFile(p, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "a")
	if err := fs.Rename(p, final); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(final)
	if err != nil || string(b) != "data" {
		t.Fatalf("read back (%q, %v), want (%q, nil)", b, err, "data")
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "a" {
		t.Fatalf("ReadDir = (%v, %v), want single entry 'a'", ents, err)
	}
}
