package wire

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"aether"
)

// ClientOptions tunes a Client. Zero values pick usable defaults.
type ClientOptions struct {
	// Conns caps the connection pool (default 1). Each Session owns one
	// connection exclusively for its lifetime; Session blocks when all
	// connections are busy.
	Conns int
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds each request write (default 10s).
	WriteTimeout time.Duration
	// MaxFrame is the response-frame ceiling (DefaultMaxFrame when 0).
	MaxFrame uint32
}

func (o *ClientOptions) withDefaults() ClientOptions {
	out := *o
	if out.Conns <= 0 {
		out.Conns = 1
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	return out
}

// RemoteError is a server-reported failure that does not map to one of
// the engine's sentinel errors.
type RemoteError struct {
	// Status is the wire status code.
	Status Status
	// Msg is the server's message.
	Msg string
}

// Error renders the status and message.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error (status %d): %s", e.Status, e.Msg)
}

// Client is a pooled wire-protocol client. Sessions check a connection
// out of the pool, giving each its own server-side agent thread;
// CommitAsync pipelines commits so a session can start its next
// transaction while earlier acknowledgements are still in flight.
type Client struct {
	addr string
	opts ClientOptions

	mu     sync.Mutex
	cond   *sync.Cond
	idle   []*cconn
	total  int
	closed bool
}

// Dial validates the address by establishing one pooled connection and
// returns the client.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.cond = sync.NewCond(&c.mu)
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.idle = append(c.idle, cc)
	c.total = 1
	c.mu.Unlock()
	return c, nil
}

func (c *Client) dial() (*cconn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &cconn{cl: c, nc: nc, br: bufio.NewReaderSize(nc, 64<<10), pending: make(map[uint64]*pendingCall)}
	go cc.readLoop()
	return cc, nil
}

// Session checks a connection out of the pool (dialing a fresh one
// while under the Conns cap) and wraps it. It blocks while the pool is
// exhausted and returns an error once the client is closed.
func (c *Client) Session() (*Session, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrConnClosed
		}
		for len(c.idle) > 0 {
			cc := c.idle[len(c.idle)-1]
			c.idle = c.idle[:len(c.idle)-1]
			if cc.healthy() {
				c.mu.Unlock()
				return &Session{cl: c, cc: cc}, nil
			}
			c.total--
		}
		if c.total < c.opts.Conns {
			c.total++
			c.mu.Unlock()
			cc, err := c.dial()
			if err != nil {
				c.mu.Lock()
				c.total--
				c.cond.Broadcast()
				c.mu.Unlock()
				return nil, err
			}
			return &Session{cl: c, cc: cc}, nil
		}
		c.cond.Wait()
	}
}

// release returns a session's connection to the pool (or discards a
// dead one).
func (c *Client) release(cc *cconn) {
	c.mu.Lock()
	if c.closed || !cc.healthy() {
		c.total--
		c.mu.Unlock()
		cc.close(ErrConnClosed)
		c.cond.Broadcast()
		return
	}
	c.idle = append(c.idle, cc)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Close shuts the pool down. Sessions should be closed first; any
// still-open session's requests fail with ErrConnClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, cc := range idle {
		cc.close(ErrConnClosed)
	}
	return nil
}

// Stats fetches and parses the server's metrics page (OpStats): one
// counter per "name value" line. It dials a dedicated connection
// rather than using the pool, so monitoring never contends with (or
// deadlocks behind) checked-out workload sessions.
func (c *Client) Stats() (map[string]int64, error) {
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	defer cc.close(ErrConnClosed)
	s := &Session{cl: c, cc: cc}
	text, err := s.StatsText()
	if err != nil {
		return nil, err
	}
	return ParseMetrics(text), nil
}

// ParseMetrics parses a plaintext metrics page into a name→value map,
// skipping comment lines.
func ParseMetrics(text string) map[string]int64 {
	out := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			out[name] = n
		}
	}
	return out
}

// callResult is a resolved call: the response, or the connection error
// that killed it.
type callResult struct {
	resp Response
	err  error
}

// pendingCall tracks one in-flight request on a connection: sync
// callers wait on ch; pipelined commits register cb instead, fired on
// the reader goroutine. Once handed to send, a pendingCall is resolved
// exactly once — by the reader, by connection failure, or immediately
// when the connection was already dead.
type pendingCall struct {
	op Opcode
	ch chan callResult
	cb func(Response, error)
}

// resolve delivers the outcome to whichever waiter the call has.
func (pc *pendingCall) resolve(resp Response, err error) {
	if pc.cb != nil {
		pc.cb(resp, err)
		return
	}
	pc.ch <- callResult{resp: resp, err: err}
}

// cconn is one pooled connection.
type cconn struct {
	cl *Client
	nc net.Conn
	br *bufio.Reader

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingCall
	err     error
}

func (cc *cconn) healthy() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err == nil
}

// close fails the connection: every pending call (sync or pipelined)
// resolves with the sticky error, so acknowledgements are never lost
// silently — they fail loudly.
func (cc *cconn) close(cause error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = cause
	}
	calls := cc.pending
	cc.pending = make(map[uint64]*pendingCall)
	err := cc.err
	cc.mu.Unlock()
	cc.nc.Close()
	for _, pc := range calls {
		pc.resolve(Response{}, err)
	}
}

// readLoop demultiplexes response frames to their pending calls by
// request ID.
func (cc *cconn) readLoop() {
	for {
		payload, err := ReadFrame(cc.br, cc.cl.opts.MaxFrame)
		if err != nil {
			cc.close(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			cc.close(err)
			return
		}
		cc.mu.Lock()
		pc := cc.pending[resp.ID]
		delete(cc.pending, resp.ID)
		cc.mu.Unlock()
		if pc == nil {
			continue // response to a request we gave up on
		}
		pc.resolve(resp, nil)
	}
}

// send registers pc and writes the request frame. Whatever happens, pc
// is resolved exactly once — immediately with the sticky error when the
// connection is already dead, by close on a write failure, or by the
// reader. The returned error is advisory (the same one pc sees).
func (cc *cconn) send(req *Request, pc *pendingCall) error {
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		pc.resolve(Response{}, err)
		return err
	}
	cc.nextID++
	req.ID = cc.nextID
	pc.op = req.Op
	cc.pending[req.ID] = pc
	cc.mu.Unlock()

	frame := AppendRequest(nil, req)
	cc.nc.SetWriteDeadline(time.Now().Add(cc.cl.opts.WriteTimeout))
	if _, err := cc.nc.Write(frame); err != nil {
		err = fmt.Errorf("%w: %v", ErrConnClosed, err)
		cc.close(err) // resolves every pending call, ours included
		return err
	}
	return nil
}

// call sends req and waits for its response.
func (cc *cconn) call(req *Request) (Response, error) {
	pc := &pendingCall{ch: make(chan callResult, 1)}
	cc.send(req, pc)
	res := <-pc.ch
	return res.resp, res.err
}

// TableID is a connection-scoped table handle returned by
// Session.CreateTable / Session.OpenTable.
type TableID uint32

// Session is one checked-out connection: the client side of a
// server-side agent thread. Like aether.Session it must not be shared
// across goroutines; commit acknowledgements arrive on an internal
// goroutine.
type Session struct {
	cl *Client
	cc *cconn
	wg sync.WaitGroup // outstanding CommitAsync acknowledgements
}

// Close waits for every outstanding pipelined acknowledgement, then
// returns the connection to the pool.
func (s *Session) Close() error {
	s.wg.Wait()
	s.cl.release(s.cc)
	return nil
}

// statusErr maps a response to the engine's sentinel errors (so
// errors.Is works across the wire) or a *RemoteError.
func statusErr(resp Response) error {
	switch resp.Status {
	case StatusOK:
		return nil
	case StatusDuplicateKey:
		return aether.ErrDuplicateKey
	case StatusKeyNotFound:
		return aether.ErrKeyNotFound
	case StatusTxnDone:
		return aether.ErrTxnDone
	case StatusPrecommitted:
		return aether.ErrPrecommitted
	case StatusShuttingDown:
		return ErrShuttingDown
	default:
		return &RemoteError{Status: resp.Status, Msg: string(resp.Body)}
	}
}

// do runs a sync request expecting an empty-or-ignored OK body.
func (s *Session) do(req *Request) error {
	resp, err := s.cc.call(req)
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// Ping round-trips an empty frame.
func (s *Session) Ping() error { return s.do(&Request{Op: OpPing}) }

// CreateTable registers a new table on the server.
func (s *Session) CreateTable(name string) (TableID, error) {
	return s.tableCall(OpCreateTable, name)
}

// OpenTable resolves an existing table to a handle.
func (s *Session) OpenTable(name string) (TableID, error) {
	return s.tableCall(OpOpenTable, name)
}

func (s *Session) tableCall(op Opcode, name string) (TableID, error) {
	resp, err := s.cc.call(&Request{Op: op, Name: name})
	if err != nil {
		return 0, err
	}
	if err := statusErr(resp); err != nil {
		return 0, err
	}
	if len(resp.Body) != 4 {
		return 0, fmt.Errorf("%w: %d-byte table handle", ErrBadResponse, len(resp.Body))
	}
	id := TableID(resp.Body[0])<<24 | TableID(resp.Body[1])<<16 | TableID(resp.Body[2])<<8 | TableID(resp.Body[3])
	return id, nil
}

// Begin starts a transaction under the server database's default
// commit mode.
func (s *Session) Begin() error { return s.do(&Request{Op: OpBegin, Mode: ModeDefault}) }

// BeginMode starts a transaction under an explicit commit mode
// (ModePipelined, ModeSync, ModeSyncELR, ModeAsync).
func (s *Session) BeginMode(mode uint8) error {
	return s.do(&Request{Op: OpBegin, Mode: mode})
}

// Insert adds a row under key.
func (s *Session) Insert(t TableID, key uint64, row []byte) error {
	return s.do(&Request{Op: OpInsert, Table: uint32(t), Key: key, Row: row})
}

// Update replaces the row under key.
func (s *Session) Update(t TableID, key uint64, row []byte) error {
	return s.do(&Request{Op: OpUpdate, Table: uint32(t), Key: key, Row: row})
}

// Delete removes the row under key.
func (s *Session) Delete(t TableID, key uint64) error {
	return s.do(&Request{Op: OpDelete, Table: uint32(t), Key: key})
}

// Read returns the row under key.
func (s *Session) Read(t TableID, key uint64) ([]byte, error) {
	resp, err := s.cc.call(&Request{Op: OpRead, Table: uint32(t), Key: key})
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Scan returns up to maxRows rows with keys in [from, to] (0 = the
// server's cap; responses are also bounded by the frame ceiling).
func (s *Session) Scan(t TableID, from, to uint64, maxRows uint32) ([]ScanRow, error) {
	resp, err := s.cc.call(&Request{Op: OpScan, Table: uint32(t), From: from, To: to, MaxRows: maxRows})
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	return DecodeScanBody(resp.Body)
}

// Commit finishes the transaction and blocks until the server
// acknowledges the commit outcome (durable for safe modes).
func (s *Session) Commit() error { return s.do(&Request{Op: OpCommit}) }

// Abort rolls the transaction back.
func (s *Session) Abort() error { return s.do(&Request{Op: OpAbort}) }

// CommitAsync finishes the transaction without waiting: ack runs (on
// the connection's reader goroutine) when the server's durable
// acknowledgement arrives, or with an error if the connection dies
// first — an ack is never silently lost. The session can immediately
// Begin its next transaction; that is flush pipelining over the wire.
func (s *Session) CommitAsync(ack func(error)) error {
	s.wg.Add(1)
	pc := &pendingCall{cb: func(resp Response, err error) {
		defer s.wg.Done()
		if err == nil {
			err = statusErr(resp)
		}
		if ack != nil {
			ack(err)
		}
	}}
	// send resolves pc exactly once on every path, so the WaitGroup is
	// balanced by the callback alone; the returned error is advisory.
	return s.cc.send(&Request{Op: OpCommit}, pc)
}

// StatsText fetches the server's plaintext metrics page.
func (s *Session) StatsText() (string, error) {
	resp, err := s.cc.call(&Request{Op: OpStats})
	if err != nil {
		return "", err
	}
	if err := statusErr(resp); err != nil {
		return "", err
	}
	return string(resp.Body), nil
}
