package wire

import (
	"bufio"
	"encoding/binary"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aether"
	"aether/internal/soak"
)

// buildAetherd compiles cmd/aetherd into a temp dir and returns the
// binary path.
func buildAetherd(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	bin := filepath.Join(t.TempDir(), "aetherd")
	cmd := exec.Command("go", "build", "-o", bin, "aether/cmd/aetherd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build aetherd: %v\n%s", err, out)
	}
	return bin
}

// startAetherd launches the daemon against dbDir and returns the
// process plus the address it bound.
func startAetherd(t *testing.T, bin, dbDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-db", dbDir, "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start aetherd: %v", err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- a
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("aetherd did not report its address")
		return nil, ""
	}
}

// TestKillMidCommitRecovers SIGKILLs a live aetherd while a commit is
// in flight and verifies — with the soak harness's model checker —
// that the on-disk state recovers to exactly the acknowledged commits,
// plus at most the one in-doubt transaction whose ack the kill
// swallowed. A restarted aetherd must then serve the recovered table
// from its durable catalog.
func TestKillMidCommitRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real process; skipped in -short")
	}
	bin := buildAetherd(t)
	dbDir := t.TempDir()
	proc, addr := startAetherd(t, bin, dbDir, "-mode", "sync")

	cl, err := Dial(addr, ClientOptions{})
	if err != nil {
		proc.Process.Kill()
		proc.Wait()
		t.Fatalf("dial: %v", err)
	}
	s, err := cl.Session()
	if err != nil {
		proc.Process.Kill()
		proc.Wait()
		t.Fatalf("session: %v", err)
	}
	tbl, err := s.CreateTable("kv")
	if err != nil {
		proc.Process.Kill()
		proc.Wait()
		t.Fatalf("create table: %v", err)
	}

	// Sequential synchronous commits: every Commit that returns nil is
	// durably acknowledged and goes into the model.
	model := make(map[uint64]uint64)
	const committed = 120
	for i := uint64(1); i <= committed; i++ {
		val := i * 7
		if err := s.BeginMode(ModeSync); err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if err := s.Insert(tbl, i, aether.Row(i, u64(val))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if err := s.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		model[i] = val
	}

	// One more transaction — and the kill lands while its commit is in
	// flight. Its ack never arrives, so it is in doubt: recovery may
	// have it or not, but nothing else may change.
	inDoubtKey := uint64(committed + 1)
	if err := s.BeginMode(ModeSync); err != nil {
		t.Fatalf("begin in-doubt: %v", err)
	}
	if err := s.Insert(tbl, inDoubtKey, aether.Row(inDoubtKey, u64(inDoubtKey*7))); err != nil {
		t.Fatalf("insert in-doubt: %v", err)
	}
	ackErr := make(chan error, 1)
	if err := s.CommitAsync(func(err error) { ackErr <- err }); err != nil {
		t.Fatalf("send in-doubt commit: %v", err)
	}
	if err := proc.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	proc.Wait()
	if err := <-ackErr; err == nil {
		// The ack beat the kill: the transaction is committed, not in
		// doubt.
		model[inDoubtKey] = inDoubtKey * 7
	}
	s.Close()
	cl.Close()

	// Recover in-process and compare against the model.
	got := readKVState(t, dbDir)
	diffs := soak.DiffStates(model, got)
	if len(diffs) > 0 {
		withDoubt := make(map[uint64]uint64, len(model)+1)
		for k, v := range model {
			withDoubt[k] = v
		}
		withDoubt[inDoubtKey] = inDoubtKey * 7
		if d2 := soak.DiffStates(withDoubt, got); len(d2) > 0 {
			t.Fatalf("recovered state diverges from model (and model+in-doubt):\nvs model: %v\nvs model+in-doubt: %v", diffs, d2)
		}
	}

	// A restarted aetherd must re-create the table from its catalog and
	// serve the recovered rows.
	proc2, addr2 := startAetherd(t, bin, dbDir, "-mode", "sync")
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	cl2, err := Dial(addr2, ClientOptions{})
	if err != nil {
		t.Fatalf("dial restarted: %v", err)
	}
	defer cl2.Close()
	s2, err := cl2.Session()
	if err != nil {
		t.Fatalf("session restarted: %v", err)
	}
	defer s2.Close()
	tbl2, err := s2.OpenTable("kv")
	if err != nil {
		t.Fatalf("catalog did not restore table: %v", err)
	}
	if err := s2.Begin(); err != nil {
		t.Fatalf("begin on restarted: %v", err)
	}
	row, err := s2.Read(tbl2, 1)
	if err != nil {
		t.Fatalf("read committed key from restarted aetherd: %v", err)
	}
	if got := binary.BigEndian.Uint64(aether.RowPayload(row)); got != 7 {
		t.Fatalf("restarted read = %d, want 7", got)
	}
	if err := s2.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
}

// readKVState opens the killed daemon's database in-process (the same
// layout aetherd uses) and scans table "kv" into a key→value map.
func readKVState(t *testing.T, dbDir string) map[uint64]uint64 {
	t.Helper()
	db, err := aether.Open(aether.Options{LogPath: filepath.Join(dbDir, "log")})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("kv")
	if err != nil {
		t.Fatalf("re-create table: %v", err)
	}
	if err := db.RebuildAfterRecovery(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	sess := db.Session()
	defer sess.Close()
	tx := sess.Begin()
	defer tx.Abort()
	got := make(map[uint64]uint64)
	err = tx.Scan(tbl, 0, ^uint64(0), func(key uint64, row []byte) bool {
		got[key] = binary.BigEndian.Uint64(aether.RowPayload(row))
		return true
	})
	if err != nil {
		t.Fatalf("scan recovered state: %v", err)
	}
	return got
}
