// Package wire is aetherd's client/server protocol: a length-prefixed
// binary framing over TCP that puts real network concurrency in front
// of the Session API. Every request carries a client-chosen request ID,
// so a connection can pipeline: the client keeps sending while earlier
// responses — in particular commit acknowledgements, which the server
// defers until the commit record is durable — are still in flight.
// Concurrent in-flight commits from many connections land in the same
// group-commit flush, which is exactly the consolidation the paper's
// log buffer exists to exploit.
//
// Frame layout (all integers big-endian):
//
//	+--------+----------------------------+
//	| uint32 | payload (length bytes)     |
//	| length |                            |
//	+--------+----------------------------+
//
// Request payload:  uint64 requestID | uint8 opcode | body
// Response payload: uint64 requestID | uint8 status | body
//
// The length counts the payload only. A zero-length or short frame
// (under the 9-byte request header) is malformed, and a frame longer
// than the negotiated maximum is rejected before any allocation — the
// decoder never allocates attacker-chosen sizes. Responses to one
// request always carry its ID; pipelined responses may arrive out of
// order relative to other requests (a commit ack overtaken by the next
// transaction's replies is normal), never reordered for the same ID.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcode identifies a request's operation.
type Opcode uint8

// The request opcodes. A transaction is the connection's current state:
// OpBegin opens one, data ops run inside it, OpCommit/OpAbort end it.
// OpCommit's response is deferred until the commit outcome is decided
// (durable for safe modes), so a pipelining client sees it arrive after
// the responses of requests it sent later.
const (
	// OpPing round-trips an empty frame (liveness, latency probes).
	OpPing Opcode = 1
	// OpCreateTable registers a new table by name; the response carries
	// the connection-scoped table handle.
	OpCreateTable Opcode = 2
	// OpOpenTable resolves an existing table by name to a handle.
	OpOpenTable Opcode = 3
	// OpBegin starts a transaction under the given commit mode.
	OpBegin Opcode = 4
	// OpInsert adds a row under a key.
	OpInsert Opcode = 5
	// OpRead returns the row under a key.
	OpRead Opcode = 6
	// OpUpdate replaces the row under a key with the carried row.
	OpUpdate Opcode = 7
	// OpDelete removes the row under a key.
	OpDelete Opcode = 8
	// OpScan returns up to MaxRows rows with keys in [From, To].
	OpScan Opcode = 9
	// OpCommit finishes the transaction; the ack is sent once the
	// commit outcome is decided for the client.
	OpCommit Opcode = 10
	// OpAbort rolls the transaction back.
	OpAbort Opcode = 11
	// OpStats returns the plaintext metrics page (engine Stats counters
	// plus the server's own wire counters), /metrics-style.
	OpStats Opcode = 12
)

// String names the opcode for error messages and traces.
func (o Opcode) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpCreateTable:
		return "CREATE"
	case OpOpenTable:
		return "OPEN"
	case OpBegin:
		return "BEGIN"
	case OpInsert:
		return "INSERT"
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpScan:
		return "SCAN"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ABORT"
	case OpStats:
		return "STATS"
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Status is a response's outcome code.
type Status uint8

// Response status codes. StatusOK carries an op-specific body; every
// other status carries a human-readable message. The engine's sentinel
// errors get their own codes so clients recover the typed error across
// the wire.
const (
	// StatusOK is success.
	StatusOK Status = 0
	// StatusErr is a generic failure (message in the body).
	StatusErr Status = 1
	// StatusDuplicateKey maps aether.ErrDuplicateKey.
	StatusDuplicateKey Status = 2
	// StatusKeyNotFound maps aether.ErrKeyNotFound.
	StatusKeyNotFound Status = 3
	// StatusTxnDone maps aether.ErrTxnDone.
	StatusTxnDone Status = 4
	// StatusPrecommitted maps aether.ErrPrecommitted.
	StatusPrecommitted Status = 5
	// StatusNoTable means the request named an unknown table handle or
	// table name.
	StatusNoTable Status = 6
	// StatusNoTxn means a data op or commit arrived with no transaction
	// open on the connection.
	StatusNoTxn Status = 7
	// StatusTxnOpen means OpBegin arrived while a transaction was
	// already open on the connection.
	StatusTxnOpen Status = 8
	// StatusBadRequest means the request body failed validation.
	StatusBadRequest Status = 9
	// StatusShuttingDown means the server is draining and refused new
	// work.
	StatusShuttingDown Status = 10
)

// Mode is the wire encoding of a commit mode for OpBegin.
const (
	// ModeDefault uses the server database's default commit mode.
	ModeDefault uint8 = 0
	// ModePipelined selects flush-pipelined commit with early lock
	// release (the paper's headline protocol).
	ModePipelined uint8 = 1
	// ModeSync selects the traditional blocking commit.
	ModeSync uint8 = 2
	// ModeSyncELR blocks for durability but releases locks at insert.
	ModeSyncELR uint8 = 3
	// ModeAsync acknowledges before durability (unsafe, for
	// comparison).
	ModeAsync uint8 = 4
	// modeMax bounds the valid encodings.
	modeMax = ModeAsync
)

// Protocol limits.
const (
	// DefaultMaxFrame is the frame-size ceiling both sides enforce
	// unless configured otherwise.
	DefaultMaxFrame = 1 << 20
	// MaxTableName bounds table-name length on the wire.
	MaxTableName = 1 << 10
	// reqHeader is requestID + opcode.
	reqHeader = 8 + 1
	// respHeader is requestID + status.
	respHeader = 8 + 1
	// frameHeader is the length prefix.
	frameHeader = 4
)

// Typed protocol errors. Server and client surface these (wrapped with
// connection context) when a peer misbehaves; each closes only the
// connection it occurred on.
var (
	// ErrFrameTooLarge is returned when a frame's length prefix exceeds
	// the configured maximum. The stream cannot be resynchronized, so
	// the connection closes.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncatedFrame is returned when the peer closed (or stalled
	// past the read deadline) mid-frame.
	ErrTruncatedFrame = errors.New("wire: truncated frame")
	// ErrUnknownOpcode is returned for a request with an opcode the
	// server does not understand.
	ErrUnknownOpcode = errors.New("wire: unknown opcode")
	// ErrBadRequest is returned when a request body fails validation
	// (short body, oversized name, trailing garbage).
	ErrBadRequest = errors.New("wire: malformed request")
	// ErrBadResponse is returned by the client when a response frame
	// fails validation.
	ErrBadResponse = errors.New("wire: malformed response")
	// ErrWriteTimeout is recorded when a peer stopped draining its
	// socket and the write deadline expired (stalled-reader guard).
	ErrWriteTimeout = errors.New("wire: write timeout (stalled reader)")
	// ErrReadTimeout is recorded when a connection sat idle (or stalled
	// mid-frame) past the read deadline.
	ErrReadTimeout = errors.New("wire: read timeout")
	// ErrConnClosed is returned for requests issued on (or in flight
	// over) a connection that has failed or been closed.
	ErrConnClosed = errors.New("wire: connection closed")
	// ErrShuttingDown is returned when the server is draining: in-flight
	// transactions finish, new work is refused.
	ErrShuttingDown = errors.New("wire: server shutting down")
	// ErrPoolExhausted is returned when a client's connection budget is
	// exhausted and blocking was declined.
	ErrPoolExhausted = errors.New("wire: connection pool exhausted")
)

// IsTransportErr reports whether err means the connection itself
// failed (closed, truncated, oversized or undecodable stream) rather
// than the server answering with an error: a commit acknowledgement
// resolved with a transport error has an unknown durable outcome.
func IsTransportErr(err error) bool {
	return errors.Is(err, ErrConnClosed) ||
		errors.Is(err, ErrTruncatedFrame) ||
		errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrBadResponse)
}

// Request is one decoded request frame. Only the fields relevant to Op
// are meaningful; EncodeRequest writes exactly those, and DecodeRequest
// rejects payloads with trailing or missing bytes.
type Request struct {
	// ID is the client-chosen request identifier echoed in the
	// response.
	ID uint64
	// Op is the operation.
	Op Opcode
	// Table is the connection-scoped table handle (data ops).
	Table uint32
	// Key is the row key (point ops).
	Key uint64
	// From is the scan range start (OpScan).
	From uint64
	// To is the scan range end, inclusive (OpScan).
	To uint64
	// MaxRows bounds the scan result count (OpScan; 0 = server cap).
	MaxRows uint32
	// Mode is the commit-mode byte (OpBegin).
	Mode uint8
	// Name is the table name (OpCreateTable, OpOpenTable).
	Name string
	// Row is the row image (OpInsert, OpUpdate). Decoded requests alias
	// the frame buffer; copy before retaining.
	Row []byte
}

// AppendRequest appends r as a complete frame (length prefix included)
// to dst and returns the extended slice.
func AppendRequest(dst []byte, r *Request) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length patched below
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpPing, OpCommit, OpAbort, OpStats:
	case OpCreateTable, OpOpenTable:
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Name)))
		dst = append(dst, r.Name...)
	case OpBegin:
		dst = append(dst, r.Mode)
	case OpInsert, OpUpdate:
		dst = binary.BigEndian.AppendUint32(dst, r.Table)
		dst = binary.BigEndian.AppendUint64(dst, r.Key)
		dst = append(dst, r.Row...)
	case OpRead, OpDelete:
		dst = binary.BigEndian.AppendUint32(dst, r.Table)
		dst = binary.BigEndian.AppendUint64(dst, r.Key)
	case OpScan:
		dst = binary.BigEndian.AppendUint32(dst, r.Table)
		dst = binary.BigEndian.AppendUint64(dst, r.From)
		dst = binary.BigEndian.AppendUint64(dst, r.To)
		dst = binary.BigEndian.AppendUint32(dst, r.MaxRows)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-frameHeader))
	return dst
}

// DecodeRequest parses a request payload (frame contents after the
// length prefix). The returned Request's Row and Name alias payload.
func DecodeRequest(payload []byte) (Request, error) {
	var r Request
	if len(payload) < reqHeader {
		return r, fmt.Errorf("%w: %d-byte payload", ErrBadRequest, len(payload))
	}
	r.ID = binary.BigEndian.Uint64(payload[0:8])
	r.Op = Opcode(payload[8])
	body := payload[reqHeader:]
	switch r.Op {
	case OpPing, OpCommit, OpAbort, OpStats:
		if len(body) != 0 {
			return r, fmt.Errorf("%w: %s with %d-byte body", ErrBadRequest, r.Op, len(body))
		}
	case OpCreateTable, OpOpenTable:
		if len(body) < 2 {
			return r, fmt.Errorf("%w: short %s body", ErrBadRequest, r.Op)
		}
		n := int(binary.BigEndian.Uint16(body[0:2]))
		if n > MaxTableName {
			return r, fmt.Errorf("%w: %d-byte table name", ErrBadRequest, n)
		}
		if len(body) != 2+n {
			return r, fmt.Errorf("%w: %s name length %d vs body %d", ErrBadRequest, r.Op, n, len(body)-2)
		}
		r.Name = string(body[2 : 2+n])
	case OpBegin:
		if len(body) != 1 {
			return r, fmt.Errorf("%w: BEGIN with %d-byte body", ErrBadRequest, len(body))
		}
		r.Mode = body[0]
		if r.Mode > modeMax {
			return r, fmt.Errorf("%w: commit mode %d", ErrBadRequest, r.Mode)
		}
	case OpInsert, OpUpdate:
		if len(body) < 12 {
			return r, fmt.Errorf("%w: short %s body", ErrBadRequest, r.Op)
		}
		r.Table = binary.BigEndian.Uint32(body[0:4])
		r.Key = binary.BigEndian.Uint64(body[4:12])
		r.Row = body[12:]
	case OpRead, OpDelete:
		if len(body) != 12 {
			return r, fmt.Errorf("%w: %s with %d-byte body", ErrBadRequest, r.Op, len(body))
		}
		r.Table = binary.BigEndian.Uint32(body[0:4])
		r.Key = binary.BigEndian.Uint64(body[4:12])
	case OpScan:
		if len(body) != 24 {
			return r, fmt.Errorf("%w: SCAN with %d-byte body", ErrBadRequest, len(body))
		}
		r.Table = binary.BigEndian.Uint32(body[0:4])
		r.From = binary.BigEndian.Uint64(body[4:12])
		r.To = binary.BigEndian.Uint64(body[12:20])
		r.MaxRows = binary.BigEndian.Uint32(body[20:24])
	default:
		return r, fmt.Errorf("%w: %d", ErrUnknownOpcode, uint8(r.Op))
	}
	return r, nil
}

// AppendResponse appends a response frame (length prefix included) for
// request id with the given status and body.
func AppendResponse(dst []byte, id uint64, status Status, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(respHeader+len(body)))
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, byte(status))
	return append(dst, body...)
}

// Response is one decoded response frame.
type Response struct {
	// ID echoes the request this response answers.
	ID uint64
	// Status is the outcome code.
	Status Status
	// Body is the op-specific payload (aliases the frame buffer).
	Body []byte
}

// DecodeResponse parses a response payload (after the length prefix).
func DecodeResponse(payload []byte) (Response, error) {
	var r Response
	if len(payload) < respHeader {
		return r, fmt.Errorf("%w: %d-byte payload", ErrBadResponse, len(payload))
	}
	r.ID = binary.BigEndian.Uint64(payload[0:8])
	r.Status = Status(payload[8])
	r.Body = payload[respHeader:]
	return r, nil
}

// ScanRow is one row of a scan result.
type ScanRow struct {
	// Key is the row key.
	Key uint64
	// Row is the row image.
	Row []byte
}

// AppendScanBody appends the OpScan OK body (count, then key/len/row
// triples) for rows to dst.
func AppendScanBody(dst []byte, rows []ScanRow) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rows)))
	for _, kv := range rows {
		dst = binary.BigEndian.AppendUint64(dst, kv.Key)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(kv.Row)))
		dst = append(dst, kv.Row...)
	}
	return dst
}

// DecodeScanBody parses an OpScan OK body. Row count and lengths are
// validated against the actual payload before any allocation sized by
// them. Returned rows alias body.
func DecodeScanBody(body []byte) ([]ScanRow, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: short scan body", ErrBadResponse)
	}
	n := int(binary.BigEndian.Uint32(body[0:4]))
	rest := body[4:]
	// Each row needs at least 12 bytes; a count the payload cannot hold
	// is rejected before allocating for it.
	if n > len(rest)/12 {
		return nil, fmt.Errorf("%w: scan count %d exceeds payload", ErrBadResponse, n)
	}
	rows := make([]ScanRow, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 12 {
			return nil, fmt.Errorf("%w: scan row %d truncated", ErrBadResponse, i)
		}
		key := binary.BigEndian.Uint64(rest[0:8])
		rl := int(binary.BigEndian.Uint32(rest[8:12]))
		rest = rest[12:]
		if rl > len(rest) {
			return nil, fmt.Errorf("%w: scan row %d length %d exceeds payload", ErrBadResponse, i, rl)
		}
		rows = append(rows, ScanRow{Key: key, Row: rest[:rl]})
		rest = rest[rl:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after scan rows", ErrBadResponse, len(rest))
	}
	return rows, nil
}

// ReadFrame reads one length-prefixed frame payload from r, enforcing
// max before allocating. io.EOF is returned untouched only at a clean
// frame boundary; a connection dying mid-frame surfaces as
// ErrTruncatedFrame.
func ReadFrame(r io.Reader, max uint32) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %w", ErrTruncatedFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTruncatedFrame, err)
	}
	return buf, nil
}
