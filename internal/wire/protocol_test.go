package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// sampleRequests covers every opcode with realistic field values; the
// fuzz corpus and the round-trip tests both feed from it.
func sampleRequests() []Request {
	return []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpCreateTable, Name: "accounts"},
		{ID: 3, Op: OpOpenTable, Name: "accounts"},
		{ID: 4, Op: OpBegin, Mode: ModePipelined},
		{ID: 5, Op: OpInsert, Table: 1, Key: 42, Row: []byte("hello row")},
		{ID: 6, Op: OpRead, Table: 1, Key: 42},
		{ID: 7, Op: OpUpdate, Table: 1, Key: 42, Row: []byte("new row")},
		{ID: 8, Op: OpDelete, Table: 1, Key: 42},
		{ID: 9, Op: OpScan, Table: 1, From: 10, To: 99, MaxRows: 128},
		{ID: 10, Op: OpCommit},
		{ID: 11, Op: OpAbort},
		{ID: 12, Op: OpStats},
		{ID: 13, Op: OpBegin, Mode: ModeSync},
		{ID: 14, Op: OpInsert, Table: 7, Key: 0, Row: nil},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range sampleRequests() {
		frame := AppendRequest(nil, &want)
		payload, err := ReadFrame(bytes.NewReader(frame), DefaultMaxFrame)
		if err != nil {
			t.Fatalf("%s: ReadFrame: %v", want.Op, err)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("%s: DecodeRequest: %v", want.Op, err)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Table != want.Table ||
			got.Key != want.Key || got.From != want.From || got.To != want.To ||
			got.MaxRows != want.MaxRows || got.Mode != want.Mode || got.Name != want.Name ||
			!bytes.Equal(got.Row, want.Row) {
			t.Fatalf("%s: round trip mismatch:\nwant %+v\ngot  %+v", want.Op, want, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	frame := AppendResponse(nil, 77, StatusDuplicateKey, []byte("dup"))
	payload, err := ReadFrame(bytes.NewReader(frame), DefaultMaxFrame)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if resp.ID != 77 || resp.Status != StatusDuplicateKey || string(resp.Body) != "dup" {
		t.Fatalf("round trip mismatch: %+v", resp)
	}
}

func TestScanBodyRoundTrip(t *testing.T) {
	rows := []ScanRow{
		{Key: 1, Row: []byte("one")},
		{Key: 2, Row: nil},
		{Key: 3, Row: bytes.Repeat([]byte{0xAB}, 300)},
	}
	body := AppendScanBody(nil, rows)
	got, err := DecodeScanBody(body)
	if err != nil {
		t.Fatalf("DecodeScanBody: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("row count %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i].Key != rows[i].Key || !bytes.Equal(got[i].Row, rows[i].Row) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrBadRequest},
		{"short header", []byte{0, 1, 2}, ErrBadRequest},
		{"unknown opcode", append(make([]byte, 8), 0xEE), ErrUnknownOpcode},
		{"ping with body", append(append(make([]byte, 8), byte(OpPing)), 'x'), ErrBadRequest},
		{"read short body", append(append(make([]byte, 8), byte(OpRead)), 1, 2, 3), ErrBadRequest},
		{"read trailing bytes", append(append(make([]byte, 8), byte(OpRead)), make([]byte, 13)...), ErrBadRequest},
		{"begin bad mode", append(append(make([]byte, 8), byte(OpBegin)), 0x7F), ErrBadRequest},
		{"name overruns body", append(append(make([]byte, 8), byte(OpCreateTable)), 0xFF, 0xFF), ErrBadRequest},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.payload); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	// A length prefix above max is rejected before any allocation.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(big), 1<<16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
	// A stream dying mid-frame is a truncation, not a clean EOF.
	trunc := []byte{0, 0, 0, 10, 'a', 'b'}
	if _, err := ReadFrame(bytes.NewReader(trunc), 1<<16); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("truncated frame: got %v, want ErrTruncatedFrame", err)
	}
	// A stream dying inside the header is also a truncation.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), 1<<16); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("truncated header: got %v, want ErrTruncatedFrame", err)
	}
	// EOF exactly at a frame boundary stays io.EOF (clean disconnect).
	if _, err := ReadFrame(bytes.NewReader(nil), 1<<16); err != io.EOF {
		t.Fatalf("clean EOF: got %v, want io.EOF", err)
	}
}

func TestDecodeScanBodyRejectsHostileCounts(t *testing.T) {
	// A count far beyond what the payload can hold must be rejected
	// before allocating for it.
	body := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeScanBody(body); !errors.Is(err, ErrBadResponse) {
		t.Fatalf("hostile count: got %v, want ErrBadResponse", err)
	}
	// A row length overrunning the payload is rejected too.
	body = AppendScanBody(nil, []ScanRow{{Key: 1, Row: []byte("xy")}})
	body[4+8+3] = 0xFF // corrupt the row length
	if _, err := DecodeScanBody(body); !errors.Is(err, ErrBadResponse) {
		t.Fatalf("overrun row length: got %v, want ErrBadResponse", err)
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Commits":            "commits",
		"LogFlushes":         "log_flushes",
		"TxnsAbortedOnClose": "txns_aborted_on_close",
		"LogBase":            "log_base",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseMetrics(t *testing.T) {
	text := "# aetherd metrics\naether_commits 42\nwire_frames_in 7\nnot a number x\n\n"
	m := ParseMetrics(text)
	if m["aether_commits"] != 42 || m["wire_frames_in"] != 7 {
		t.Fatalf("parse mismatch: %v", m)
	}
	if _, ok := m["not"]; ok {
		t.Fatalf("junk line parsed: %v", m)
	}
}

// FuzzFrameDecode feeds arbitrary bytes through the full server-side
// decode path: frame reader, request decoder, and (treating the same
// bytes as a client would) response and scan decoders. The decoders
// must never panic and never allocate attacker-chosen sizes — the
// frame ceiling bounds every allocation.
func FuzzFrameDecode(f *testing.F) {
	for _, r := range sampleRequests() {
		f.Add(AppendRequest(nil, &r))
	}
	f.Add(AppendResponse(nil, 9, StatusOK, AppendScanBody(nil, []ScanRow{{Key: 1, Row: []byte("r")}})))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 1 << 16
		br := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(br, max)
			if err != nil {
				break
			}
			if len(payload) > max {
				t.Fatalf("ReadFrame returned %d bytes over the %d cap", len(payload), max)
			}
			if req, err := DecodeRequest(payload); err == nil {
				// Whatever decoded must re-encode without panicking.
				AppendRequest(nil, &req)
			}
			if resp, err := DecodeResponse(payload); err == nil {
				if rows, err := DecodeScanBody(resp.Body); err == nil {
					AppendScanBody(nil, rows)
				}
			}
		}
	})
}

// FuzzRequestRoundTrip normalizes arbitrary field values into a valid
// request and asserts encode → frame → decode is the identity.
func FuzzRequestRoundTrip(f *testing.F) {
	for _, r := range sampleRequests() {
		f.Add(r.ID, uint8(r.Op), r.Table, r.Key, r.From, r.To, r.MaxRows, r.Mode, r.Name, r.Row)
	}
	ops := []Opcode{OpPing, OpCreateTable, OpOpenTable, OpBegin, OpInsert, OpRead, OpUpdate, OpDelete, OpScan, OpCommit, OpAbort, OpStats}
	f.Fuzz(func(t *testing.T, id uint64, op uint8, table uint32, key, from, to uint64, maxRows uint32, mode uint8, name string, row []byte) {
		want := Request{ID: id, Op: ops[int(op)%len(ops)]}
		switch want.Op {
		case OpCreateTable, OpOpenTable:
			if len(name) > MaxTableName {
				name = name[:MaxTableName]
			}
			want.Name = name
		case OpBegin:
			want.Mode = mode % (modeMax + 1)
		case OpInsert, OpUpdate:
			want.Table, want.Key, want.Row = table, key, row
		case OpRead, OpDelete:
			want.Table, want.Key = table, key
		case OpScan:
			want.Table, want.From, want.To, want.MaxRows = table, from, to, maxRows
		}
		frame := AppendRequest(nil, &want)
		payload, err := ReadFrame(bytes.NewReader(frame), DefaultMaxFrame+64)
		if err != nil {
			t.Fatalf("ReadFrame on own encoding: %v", err)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("DecodeRequest on own encoding of %s: %v", want.Op, err)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Table != want.Table ||
			got.Key != want.Key || got.From != want.From || got.To != want.To ||
			got.MaxRows != want.MaxRows || got.Mode != want.Mode || got.Name != want.Name ||
			!bytes.Equal(got.Row, want.Row) {
			t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
		}
	})
}
