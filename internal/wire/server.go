package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aether"
)

// ServerOptions tunes a Server. Zero values pick production defaults.
type ServerOptions struct {
	// ReadTimeout bounds how long a connection may sit idle (or stall
	// mid-frame) before it is closed with ErrReadTimeout. Default 2m.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write; a client that stops
	// draining its socket is closed with ErrWriteTimeout once its
	// responses stop fitting in kernel buffers. Default 10s.
	WriteTimeout time.Duration
	// MaxFrame is the request-frame size ceiling (DefaultMaxFrame when
	// zero). Oversized frames close the connection before allocation.
	MaxFrame uint32
	// MaxScanRows caps rows per OpScan response (default 4096); scan
	// responses are additionally bounded by MaxFrame.
	MaxScanRows uint32
	// MaxQueuedBytes bounds the per-connection response queue; a read
	// loop outrunning the writer blocks (TCP backpressure) at this many
	// queued bytes. Commit acknowledgements are exempt — the log
	// daemon's callback must never block — and are bounded instead by
	// the client's own pipelining depth. Default 8MiB.
	MaxQueuedBytes int
	// OnCreateTable, when non-nil, runs after each successful
	// OpCreateTable — the hook aetherd uses to append the name to its
	// durable table catalog so a restart re-creates tables in the
	// original order. An error is reported to the client.
	OnCreateTable func(name string) error
	// Logf, when non-nil, receives one line per connection close that
	// was not a clean disconnect (the typed reason included).
	Logf func(format string, args ...any)
}

func (o *ServerOptions) withDefaults() ServerOptions {
	out := *o
	if out.ReadTimeout <= 0 {
		out.ReadTimeout = 2 * time.Minute
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	if out.MaxScanRows == 0 {
		out.MaxScanRows = 4096
	}
	if out.MaxQueuedBytes <= 0 {
		out.MaxQueuedBytes = 8 << 20
	}
	return out
}

// ServerStats is a snapshot of the server's wire-level counters,
// surfaced on the OpStats metrics page next to the engine counters.
type ServerStats struct {
	// Accepted counts connections ever accepted.
	Accepted int64
	// Active is the number of currently live connections.
	Active int64
	// Refused counts connections refused because the server was
	// draining.
	Refused int64
	// FramesIn counts request frames fully read.
	FramesIn int64
	// FramesOut counts response frames fully written.
	FramesOut int64
	// CommitsAcked counts commit acknowledgements delivered durably
	// (StatusOK commit responses).
	CommitsAcked int64
	// Oversized counts connections closed for a frame above MaxFrame.
	Oversized int64
	// Truncated counts connections that died or stalled mid-frame.
	Truncated int64
	// BadRequests counts connections closed for malformed request
	// bodies.
	BadRequests int64
	// UnknownOps counts connections closed for unknown opcodes.
	UnknownOps int64
	// ReadTimeouts counts connections closed idle past ReadTimeout.
	ReadTimeouts int64
	// WriteTimeouts counts connections closed by the stalled-reader
	// write deadline.
	WriteTimeouts int64
	// TxnsAbortedOnClose counts transactions the server had to abort
	// because their connection went away mid-transaction.
	TxnsAbortedOnClose int64
}

type serverCounters struct {
	accepted, active, refused   atomic.Int64
	framesIn, framesOut         atomic.Int64
	commitsAcked                atomic.Int64
	oversized, truncated        atomic.Int64
	badRequests, unknownOps     atomic.Int64
	readTimeouts, writeTimeouts atomic.Int64
	txnsAborted                 atomic.Int64
}

// Server serves the wire protocol over an aether database: one
// goroutine plus one aether.Session per connection, so every connection
// is the paper's agent thread and concurrent in-flight commits from
// many connections consolidate into shared group-commit flushes.
type Server struct {
	db   *aether.DB
	opts ServerOptions

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
	st       serverCounters
}

// NewServer wraps db in a wire server. The caller keeps ownership of
// db (Shutdown does not close it).
func NewServer(db *aether.DB, opts ServerOptions) *Server {
	return &Server{db: db, opts: opts.withDefaults(), conns: make(map[*conn]struct{})}
}

// Serve accepts connections on ln until Shutdown (or a listener error)
// and blocks for the accept loop's lifetime. A nil return means the
// listener was closed by Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			s.st.refused.Add(1)
			nc.Close()
			continue
		}
		s.st.accepted.Add(1)
		s.st.active.Add(1)
		c := newConn(s, nc)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.serve()
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server gracefully: the listener closes (new
// connections are refused), idle connections are released immediately,
// and connections with an open transaction get to finish it — commit
// acknowledgements still in flight are delivered before their
// connections close. When ctx expires first, the remaining connections
// are force-closed. Shutdown does not close the underlying database.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.forceClose()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close force-closes every connection and the listener immediately.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// Stats snapshots the wire-level counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Accepted:           s.st.accepted.Load(),
		Active:             s.st.active.Load(),
		Refused:            s.st.refused.Load(),
		FramesIn:           s.st.framesIn.Load(),
		FramesOut:          s.st.framesOut.Load(),
		CommitsAcked:       s.st.commitsAcked.Load(),
		Oversized:          s.st.oversized.Load(),
		Truncated:          s.st.truncated.Load(),
		BadRequests:        s.st.badRequests.Load(),
		UnknownOps:         s.st.unknownOps.Load(),
		ReadTimeouts:       s.st.readTimeouts.Load(),
		WriteTimeouts:      s.st.writeTimeouts.Load(),
		TxnsAbortedOnClose: s.st.txnsAborted.Load(),
	}
}

// MetricsText renders the plaintext /metrics-style page: every int64
// engine counter from aether.Stats (prefixed aether_) plus the wire
// counters (prefixed wire_), one "name value" line each.
func (s *Server) MetricsText() string {
	var b strings.Builder
	b.WriteString("# aetherd metrics\n")
	writeMetrics(&b, "aether_", s.db.Stats())
	writeMetrics(&b, "wire_", s.Stats())
	return b.String()
}

// writeMetrics emits every int/int64 field of v as a snake_cased line;
// an []int64 field (a per-log-partition counter) becomes one line per
// element, suffixed with the partition index.
func writeMetrics(b *strings.Builder, prefix string, v any) {
	rv := reflect.ValueOf(v)
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rv.Field(i)
		name := snakeCase(rt.Field(i).Name)
		switch {
		case f.Kind() == reflect.Int64 || f.Kind() == reflect.Int:
			fmt.Fprintf(b, "%s%s %d\n", prefix, name, f.Int())
		case f.Kind() == reflect.Slice && f.Type().Elem().Kind() == reflect.Int64:
			for j := 0; j < f.Len(); j++ {
				fmt.Fprintf(b, "%s%s_%d %d\n", prefix, name, j, f.Index(j).Int())
			}
		}
	}
}

// snakeCase converts CamelCase to snake_case (acronym runs stay one
// word: "TPS" → "tps", "LogBase" → "log_base").
func snakeCase(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			prevLower := i > 0 && name[i-1] >= 'a' && name[i-1] <= 'z'
			nextLower := i+1 < len(name) && name[i+1] >= 'a' && name[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			b.WriteByte(byte(r - 'A' + 'a'))
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// outq is a connection's response queue: the read loop and the log
// daemon's commit callbacks produce frames, one writer goroutine drains
// them to the socket. Ordinary responses block when the queue is full
// (backpressure against a stalled reader); commit acknowledgements
// never block — the daemon callback must not stall the engine — and
// are tracked so a graceful close waits for every pipelined ack to be
// delivered first.
type outq struct {
	mu       sync.Mutex
	cond     *sync.Cond
	frames   [][]byte
	bytes    int
	maxBytes int
	acks     int  // commit acks started but not yet enqueued
	drain    bool // finish queued frames + pending acks, then close
	closed   bool // drop everything, conn is dead
}

func newOutq(maxBytes int) *outq {
	q := &outq{maxBytes: maxBytes}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues an ordinary response, blocking while the queue is over
// budget. It reports false when the connection is already dead.
func (q *outq) push(frame []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.bytes >= q.maxBytes && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return false
	}
	q.frames = append(q.frames, frame)
	q.bytes += len(frame)
	q.cond.Broadcast()
	return true
}

// ackStarted records one in-flight commit acknowledgement.
func (q *outq) ackStarted() {
	q.mu.Lock()
	q.acks++
	q.mu.Unlock()
}

// finishAck enqueues a commit acknowledgement without ever blocking
// (the queue budget does not apply) and retires its ackStarted.
func (q *outq) finishAck(frame []byte) {
	q.mu.Lock()
	q.acks--
	if !q.closed {
		q.frames = append(q.frames, frame)
		q.bytes += len(frame)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// beginDrain tells the writer to exit once the queue is empty and all
// pending acks have been enqueued and written.
func (q *outq) beginDrain() {
	q.mu.Lock()
	q.drain = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// close drops all queued frames and unblocks producers and the writer.
func (q *outq) close() {
	q.mu.Lock()
	q.closed = true
	q.frames = nil
	q.bytes = 0
	q.cond.Broadcast()
	q.mu.Unlock()
}

// next blocks for the next frame; ok=false means the writer should
// exit (connection dead, or drained to completion).
func (q *outq) next() (frame []byte, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if len(q.frames) > 0 {
			frame = q.frames[0]
			q.frames = q.frames[1:]
			q.bytes -= len(frame)
			q.cond.Broadcast()
			return frame, true
		}
		if q.drain && q.acks == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
}

// conn is one client connection: its goroutine owns an aether.Session
// (the paper's agent thread) and processes requests in order; a writer
// goroutine serializes responses, including commit acks arriving from
// the log daemon.
type conn struct {
	srv  *Server
	nc   net.Conn
	br   *bufio.Reader
	sess *aether.Session

	tx       *aether.Tx
	txActive atomic.Bool
	tables   []*aether.Table

	q          *outq
	writerDone chan struct{}
	closeErr   error // first typed close reason (read side)
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:        s,
		nc:         nc,
		br:         bufio.NewReaderSize(nc, 64<<10),
		sess:       s.db.Session(),
		q:          newOutq(s.opts.MaxQueuedBytes),
		writerDone: make(chan struct{}),
	}
}

// beginDrain nudges an idle connection out of its blocking read; a
// connection with an open transaction is left to finish it (the read
// loop re-checks the draining flag after every transaction end).
func (c *conn) beginDrain() {
	if !c.txActive.Load() {
		c.nc.SetReadDeadline(time.Now())
	}
}

// forceClose kills the connection immediately (Shutdown deadline).
func (c *conn) forceClose() {
	c.q.close()
	c.nc.Close()
}

// serve runs the connection to completion.
func (c *conn) serve() {
	defer c.srv.wg.Done()
	go c.writeLoop()
	graceful := c.readLoop()

	// The read side is done: abort any transaction the client left
	// open, then let the writer deliver what remains (graceful) or tear
	// down immediately (error path).
	if c.tx != nil {
		c.tx.Abort()
		c.tx = nil
		c.txActive.Store(false)
		c.srv.st.txnsAborted.Add(1)
	}
	if graceful {
		c.q.beginDrain()
	} else {
		c.q.close()
	}
	<-c.writerDone
	c.q.close()
	c.nc.Close()
	c.sess.Close()

	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	c.srv.st.active.Add(-1)
	if c.closeErr != nil && c.srv.opts.Logf != nil {
		c.srv.opts.Logf("wire: %s closed: %v", c.nc.RemoteAddr(), c.closeErr)
	}
}

// writeLoop drains the response queue to the socket under the write
// deadline; a stalled reader trips the deadline and kills the
// connection.
func (c *conn) writeLoop() {
	defer close(c.writerDone)
	for {
		frame, ok := c.q.next()
		if !ok {
			return
		}
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.WriteTimeout))
		if _, err := c.nc.Write(frame); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.srv.st.writeTimeouts.Add(1)
				c.setCloseErr(fmt.Errorf("%w: %v", ErrWriteTimeout, err))
			}
			c.q.close()
			c.nc.Close()
			return
		}
		c.srv.st.framesOut.Add(1)
	}
}

func (c *conn) setCloseErr(err error) {
	if c.closeErr == nil {
		c.closeErr = err
	}
}

// readLoop processes requests until the connection ends. It reports
// whether the end was graceful (drain pending responses) or not (drop
// them).
func (c *conn) readLoop() (graceful bool) {
	for {
		if c.srv.draining.Load() && !c.txActive.Load() {
			return true
		}
		c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.ReadTimeout))
		payload, err := ReadFrame(c.br, c.srv.opts.MaxFrame)
		if err != nil {
			return c.classifyReadErr(err)
		}
		c.srv.st.framesIn.Add(1)
		req, derr := DecodeRequest(payload)
		if derr != nil {
			// The framing held but the contents are garbage: answer with
			// the reason, then close — the peer cannot be trusted.
			id := req.ID
			if errors.Is(derr, ErrUnknownOpcode) {
				c.srv.st.unknownOps.Add(1)
			} else {
				c.srv.st.badRequests.Add(1)
			}
			c.setCloseErr(derr)
			c.q.push(AppendResponse(nil, id, StatusBadRequest, []byte(derr.Error())))
			return true
		}
		if !c.handle(&req) {
			return true
		}
	}
}

// classifyReadErr maps a frame-read failure to a typed close reason.
func (c *conn) classifyReadErr(err error) (graceful bool) {
	switch {
	case err == io.EOF:
		return true // clean disconnect at a frame boundary
	case errors.Is(err, ErrFrameTooLarge):
		c.srv.st.oversized.Add(1)
		c.setCloseErr(err)
		return false
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if c.srv.draining.Load() && !c.txActive.Load() {
				return true // the shutdown nudge, not a real timeout
			}
			c.srv.st.readTimeouts.Add(1)
			c.setCloseErr(fmt.Errorf("%w: %v", ErrReadTimeout, err))
			return false
		}
		if errors.Is(err, ErrTruncatedFrame) {
			c.srv.st.truncated.Add(1)
		}
		c.setCloseErr(err)
		return false
	}
}

// handle executes one request, enqueueing its response. It reports
// false when the connection should close.
func (c *conn) handle(req *Request) bool {
	switch req.Op {
	case OpPing:
		return c.reply(req.ID, StatusOK, nil)
	case OpStats:
		return c.reply(req.ID, StatusOK, []byte(c.srv.MetricsText()))
	case OpCreateTable:
		tbl, err := c.srv.db.CreateTable(req.Name)
		if err != nil {
			return c.replyErr(req.ID, err)
		}
		if hook := c.srv.opts.OnCreateTable; hook != nil {
			if err := hook(req.Name); err != nil {
				return c.replyErr(req.ID, fmt.Errorf("table created but catalog update failed: %w", err))
			}
		}
		return c.replyTable(req.ID, tbl)
	case OpOpenTable:
		tbl, err := c.srv.db.LookupTable(req.Name)
		if err != nil {
			return c.reply(req.ID, StatusNoTable, []byte(err.Error()))
		}
		return c.replyTable(req.ID, tbl)
	case OpBegin:
		if c.srv.draining.Load() {
			return c.reply(req.ID, StatusShuttingDown, []byte(ErrShuttingDown.Error()))
		}
		if c.tx != nil {
			return c.reply(req.ID, StatusTxnOpen, []byte("transaction already open"))
		}
		c.tx = c.sess.Begin()
		if m, ok := commitMode(req.Mode); ok {
			c.tx.SetCommitMode(m)
		}
		c.txActive.Store(true)
		return c.reply(req.ID, StatusOK, nil)
	case OpInsert:
		tbl, ok := c.table(req.Table)
		if !ok {
			return c.reply(req.ID, StatusNoTable, nil)
		}
		if c.tx == nil {
			return c.reply(req.ID, StatusNoTxn, nil)
		}
		return c.replyOutcome(req.ID, c.tx.Insert(tbl, req.Key, req.Row))
	case OpUpdate:
		tbl, ok := c.table(req.Table)
		if !ok {
			return c.reply(req.ID, StatusNoTable, nil)
		}
		if c.tx == nil {
			return c.reply(req.ID, StatusNoTxn, nil)
		}
		row := append([]byte(nil), req.Row...) // outlives the frame buffer
		err := c.tx.Update(tbl, req.Key, func([]byte) ([]byte, error) {
			return row, nil
		})
		return c.replyOutcome(req.ID, err)
	case OpDelete:
		tbl, ok := c.table(req.Table)
		if !ok {
			return c.reply(req.ID, StatusNoTable, nil)
		}
		if c.tx == nil {
			return c.reply(req.ID, StatusNoTxn, nil)
		}
		return c.replyOutcome(req.ID, c.tx.Delete(tbl, req.Key))
	case OpRead:
		tbl, ok := c.table(req.Table)
		if !ok {
			return c.reply(req.ID, StatusNoTable, nil)
		}
		if c.tx == nil {
			return c.reply(req.ID, StatusNoTxn, nil)
		}
		row, err := c.tx.Read(tbl, req.Key)
		if err != nil {
			return c.replyErr(req.ID, err)
		}
		return c.reply(req.ID, StatusOK, row)
	case OpScan:
		return c.handleScan(req)
	case OpCommit:
		return c.handleCommit(req.ID)
	case OpAbort:
		if c.tx == nil {
			return c.reply(req.ID, StatusNoTxn, nil)
		}
		err := c.tx.Abort()
		c.tx = nil
		c.txActive.Store(false)
		return c.replyOutcome(req.ID, err)
	}
	return false
}

// handleCommit detaches the transaction and defers the response to the
// commit callback: for pipelined modes the connection immediately
// processes its next request (the client's next transaction), so many
// connections' commits consolidate into shared log flushes.
func (c *conn) handleCommit(id uint64) bool {
	if c.tx == nil {
		return c.reply(id, StatusNoTxn, nil)
	}
	tx := c.tx
	c.tx = nil
	c.txActive.Store(false)
	var responded atomic.Bool
	c.q.ackStarted()
	err := tx.CommitAsyncAck(func(err error) {
		if !responded.CompareAndSwap(false, true) {
			return
		}
		if err == nil {
			c.srv.st.commitsAcked.Add(1)
		}
		st, msg := statusFor(err)
		c.q.finishAck(AppendResponse(nil, id, st, msg))
	})
	if err != nil && responded.CompareAndSwap(false, true) {
		// The synchronous part failed; the callback will never fire.
		st, msg := statusFor(err)
		c.q.finishAck(AppendResponse(nil, id, st, msg))
	}
	return true
}

// handleScan streams matching rows into one response, bounded by the
// row cap and the frame ceiling.
func (c *conn) handleScan(req *Request) bool {
	tbl, ok := c.table(req.Table)
	if !ok {
		return c.reply(req.ID, StatusNoTable, nil)
	}
	if c.tx == nil {
		return c.reply(req.ID, StatusNoTxn, nil)
	}
	limit := c.srv.opts.MaxScanRows
	if req.MaxRows > 0 && req.MaxRows < limit {
		limit = req.MaxRows
	}
	budget := int(c.srv.opts.MaxFrame) - 64
	var rows []ScanRow
	used := 0
	err := c.tx.Scan(tbl, req.From, req.To, func(key uint64, row []byte) bool {
		if uint32(len(rows)) >= limit || used+12+len(row) > budget {
			return false
		}
		rows = append(rows, ScanRow{Key: key, Row: append([]byte(nil), row...)})
		used += 12 + len(row)
		return true
	})
	if err != nil {
		return c.replyErr(req.ID, err)
	}
	return c.reply(req.ID, StatusOK, AppendScanBody(nil, rows))
}

// table resolves a connection-scoped table handle.
func (c *conn) table(id uint32) (*aether.Table, bool) {
	if id == 0 || int(id) > len(c.tables) {
		return nil, false
	}
	return c.tables[id-1], true
}

// replyTable registers tbl under a fresh handle and replies with it.
func (c *conn) replyTable(id uint64, tbl *aether.Table) bool {
	c.tables = append(c.tables, tbl)
	body := []byte{0, 0, 0, 0}
	h := uint32(len(c.tables))
	body[0], body[1], body[2], body[3] = byte(h>>24), byte(h>>16), byte(h>>8), byte(h)
	return c.reply(id, StatusOK, body)
}

func (c *conn) reply(id uint64, st Status, body []byte) bool {
	return c.q.push(AppendResponse(nil, id, st, body))
}

func (c *conn) replyErr(id uint64, err error) bool {
	st, msg := statusFor(err)
	return c.reply(id, st, msg)
}

// replyOutcome replies StatusOK for nil and the mapped error status
// otherwise.
func (c *conn) replyOutcome(id uint64, err error) bool {
	if err == nil {
		return c.reply(id, StatusOK, nil)
	}
	return c.replyErr(id, err)
}

// statusFor maps an engine error to its wire status and message.
func statusFor(err error) (Status, []byte) {
	switch {
	case err == nil:
		return StatusOK, nil
	case errors.Is(err, aether.ErrDuplicateKey):
		return StatusDuplicateKey, []byte(err.Error())
	case errors.Is(err, aether.ErrKeyNotFound):
		return StatusKeyNotFound, []byte(err.Error())
	case errors.Is(err, aether.ErrPrecommitted):
		return StatusPrecommitted, []byte(err.Error())
	case errors.Is(err, aether.ErrTxnDone):
		return StatusTxnDone, []byte(err.Error())
	default:
		return StatusErr, []byte(err.Error())
	}
}

// commitMode maps a wire mode byte to the API mode; ok=false means
// "use the database default".
func commitMode(m uint8) (aether.CommitMode, bool) {
	switch m {
	case ModePipelined:
		return aether.CommitPipelined, true
	case ModeSync:
		return aether.CommitSync, true
	case ModeSyncELR:
		return aether.CommitSyncELR, true
	case ModeAsync:
		return aether.CommitAsync, true
	}
	return 0, false
}
