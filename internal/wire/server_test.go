package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aether"
)

// startServer opens a database with opts, wraps it in a wire server
// with srvOpts, and serves it on a loopback listener. Cleanup closes
// the server and the database.
func startServer(t *testing.T, opts aether.Options, srvOpts ServerOptions) (*Server, *aether.DB, string) {
	t.Helper()
	db, err := aether.Open(opts)
	if err != nil {
		t.Fatalf("open db: %v", err)
	}
	srv := NewServer(db, srvOpts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	})
	return srv, db, ln.Addr().String()
}

func u64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// TestLoopbackPipelinedDurable drives N connections of pipelined
// commits against a file-backed server and asserts every acknowledged
// commit survives reopening the database — no lost acks.
func TestLoopbackPipelinedDurable(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log")
	opts := aether.Options{LogPath: logPath, Mode: aether.CommitPipelined}
	// Managed by hand (not startServer) because the test shuts the
	// server and database down mid-test to reopen the log.
	db, err := aether.Open(opts)
	if err != nil {
		t.Fatalf("open db: %v", err)
	}
	srv := NewServer(db, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	cl, err := Dial(addr, ClientOptions{Conns: 8})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	admin, err := cl.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if _, err := admin.CreateTable("kv"); err != nil {
		t.Fatalf("create table: %v", err)
	}
	admin.Close()

	const conns, txns = 8, 40
	var mu sync.Mutex
	acked := make(map[uint64]uint64)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := cl.Session()
			if err != nil {
				t.Errorf("conn %d: session: %v", c, err)
				return
			}
			defer s.Close()
			tbl, err := s.OpenTable("kv")
			if err != nil {
				t.Errorf("conn %d: open table: %v", c, err)
				return
			}
			for i := 0; i < txns; i++ {
				key := uint64(c*txns + i)
				val := key * 3
				if err := s.BeginMode(ModePipelined); err != nil {
					t.Errorf("conn %d: begin: %v", c, err)
					return
				}
				// Rows carry the 8-byte key prefix (aether.Row) so the
				// reopened database can rebuild its indexes from the heap.
				if err := s.Insert(tbl, key, aether.Row(key, u64(val))); err != nil {
					t.Errorf("conn %d: insert: %v", c, err)
					return
				}
				err := s.CommitAsync(func(err error) {
					if err != nil {
						t.Errorf("conn %d txn %d: commit ack: %v", c, i, err)
						return
					}
					mu.Lock()
					acked[key] = val
					mu.Unlock()
				})
				if err != nil {
					t.Errorf("conn %d: commit send: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait() // Session.Close inside each goroutine waited for its acks
	if err := cl.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}
	if len(acked) != conns*txns {
		t.Fatalf("acked %d commits, want %d", len(acked), conns*txns)
	}

	// Stop the server and database, then reopen the log: every
	// acknowledged commit must have survived.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	db.Close()
	db2, err := aether.Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tbl, err := db2.CreateTable("kv")
	if err != nil {
		t.Fatalf("re-create table: %v", err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	sess := db2.Session()
	defer sess.Close()
	tx := sess.Begin()
	defer tx.Abort()
	for key, val := range acked {
		row, err := tx.Read(tbl, key)
		if err != nil {
			t.Fatalf("acked key %d lost after reopen: %v", key, err)
		}
		if got := binary.BigEndian.Uint64(aether.RowPayload(row)); got != val {
			t.Fatalf("key %d: value %d after reopen, want %d", key, got, val)
		}
	}
}

// TestGracefulShutdownDrains asserts Shutdown lets a connection with an
// open transaction finish it, while refusing new transactions and new
// connections.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, _, addr := startServer(t, aether.Options{Device: aether.DeviceFlash}, ServerOptions{})
	cl, err := Dial(addr, ClientOptions{Conns: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	s, err := cl.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	tbl, err := s.CreateTable("kv")
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := s.Insert(tbl, 1, u64(10)); err != nil {
		t.Fatalf("insert: %v", err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Wait until the server is visibly draining (listener closed).
	deadline := time.Now().Add(5 * time.Second)
	for {
		nc, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			break // new connections refused
		}
		nc.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight transaction still completes durably.
	if err := s.Commit(); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	// But new work on the drained server is refused: either the server
	// answered StatusShuttingDown or it already closed the connection.
	if err := s.Begin(); err == nil {
		t.Fatal("Begin succeeded on a draining server")
	} else if !errors.Is(err, ErrShuttingDown) && !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Begin on draining server: %v", err)
	}
	s.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := srv.Stats(); st.Active != 0 {
		t.Fatalf("%d connections still active after Shutdown", st.Active)
	}
}

// TestGroupCommitConsolidation is the paper's headline measured over
// the network path: 32 pipelined loopback connections commit
// concurrently and the engine must absorb them into far fewer log
// flushes than commits.
func TestGroupCommitConsolidation(t *testing.T) {
	_, db, addr := startServer(t,
		aether.Options{Device: aether.DeviceFlash, Mode: aether.CommitPipelined},
		ServerOptions{})
	cl, err := Dial(addr, ClientOptions{Conns: 32})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	admin, err := cl.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if _, err := admin.CreateTable("kv"); err != nil {
		t.Fatalf("create table: %v", err)
	}
	admin.Close()

	before := db.Stats()
	const conns, txns = 32, 30
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := cl.Session()
			if err != nil {
				t.Errorf("conn %d: session: %v", c, err)
				return
			}
			defer s.Close()
			tbl, err := s.OpenTable("kv")
			if err != nil {
				t.Errorf("conn %d: open table: %v", c, err)
				return
			}
			for i := 0; i < txns; i++ {
				if err := s.BeginMode(ModePipelined); err != nil {
					t.Errorf("conn %d: begin: %v", c, err)
					return
				}
				if err := s.Insert(tbl, uint64(c*txns+i), u64(1)); err != nil {
					t.Errorf("conn %d: insert: %v", c, err)
					return
				}
				if err := s.CommitAsync(nil); err != nil {
					t.Errorf("conn %d: commit: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Read the deltas over the wire (OpStats), like a monitoring client
	// would.
	m, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	commits := m["aether_commits"] - before.Commits
	flushes := m["aether_log_flushes"] - before.LogFlushes
	if commits < conns*txns {
		t.Fatalf("only %d commits measured, want >= %d", commits, conns*txns)
	}
	if flushes*2 >= commits {
		t.Fatalf("no consolidation over the wire: %d flushes for %d commits (want < 0.5x)", flushes, commits)
	}
	t.Logf("network group commit: %d commits, %d flushes (%.2fx)", commits, flushes, float64(flushes)/float64(commits))
}

// rawConn dials a raw TCP connection for malformed-client tests.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// waitStat polls get until it returns true or the deadline passes.
func waitStat(t *testing.T, what string, get func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !get() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertHealthy asserts a well-formed client still gets service.
func assertHealthy(t *testing.T, addr string) {
	t.Helper()
	cl, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatalf("healthy dial after abuse: %v", err)
	}
	defer cl.Close()
	s, err := cl.Session()
	if err != nil {
		t.Fatalf("healthy session after abuse: %v", err)
	}
	defer s.Close()
	if err := s.Ping(); err != nil {
		t.Fatalf("healthy ping after abuse: %v", err)
	}
}

// TestMalformedClients runs each abuse case against one server and
// asserts each closes only its own connection, with the typed reason
// counted, while a well-formed client keeps getting service.
func TestMalformedClients(t *testing.T) {
	srv, _, addr := startServer(t, aether.Options{}, ServerOptions{
		MaxFrame:     1 << 16,
		ReadTimeout:  time.Minute,
		WriteTimeout: 300 * time.Millisecond,
	})

	t.Run("oversized frame", func(t *testing.T) {
		nc := rawConn(t, addr)
		// Length prefix far above MaxFrame; the server must reject it
		// before allocating and close the connection.
		if _, err := nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
			t.Fatalf("write: %v", err)
		}
		waitStat(t, "oversized counter", func() bool { return srv.Stats().Oversized >= 1 })
		assertConnClosed(t, nc)
		assertHealthy(t, addr)
	})

	t.Run("truncated header", func(t *testing.T) {
		nc := rawConn(t, addr)
		// Half a length prefix, then hang up mid-frame.
		if _, err := nc.Write([]byte{0, 0}); err != nil {
			t.Fatalf("write: %v", err)
		}
		nc.Close()
		waitStat(t, "truncated counter", func() bool { return srv.Stats().Truncated >= 1 })
		assertHealthy(t, addr)
	})

	t.Run("unknown opcode", func(t *testing.T) {
		nc := rawConn(t, addr)
		frame := make([]byte, 0, 16)
		frame = append(frame, 0, 0, 0, 9)                   // length = header only
		frame = append(frame, 0, 0, 0, 0, 0, 0, 0, 7, 0xEE) // id=7, opcode 0xEE
		if _, err := nc.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
		// The server answers with StatusBadRequest, then closes.
		payload, err := ReadFrame(nc, 1<<16)
		if err != nil {
			t.Fatalf("read error reply: %v", err)
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("decode error reply: %v", err)
		}
		if resp.ID != 7 || resp.Status != StatusBadRequest {
			t.Fatalf("error reply = id %d status %d, want id 7 StatusBadRequest", resp.ID, resp.Status)
		}
		waitStat(t, "unknown-op counter", func() bool { return srv.Stats().UnknownOps >= 1 })
		assertConnClosed(t, nc)
		assertHealthy(t, addr)
	})

	t.Run("stalled reader", func(t *testing.T) {
		// Seed one big row through a well-behaved session.
		cl, err := Dial(addr, ClientOptions{})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer cl.Close()
		s, err := cl.Session()
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		tbl, err := s.CreateTable("big")
		if err != nil {
			t.Fatalf("create table: %v", err)
		}
		if err := s.Begin(); err != nil {
			t.Fatalf("begin: %v", err)
		}
		bigRow := make([]byte, 4<<10)
		if err := s.Insert(tbl, 1, bigRow); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if err := s.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		s.Close()

		// The abusive connection requests the big row over and over
		// without ever reading a byte back; once the kernel buffers
		// fill, the server's write deadline trips.
		nc := rawConn(t, addr)
		var frames []byte
		frames = AppendRequest(frames, &Request{ID: 1, Op: OpOpenTable, Name: "big"})
		frames = AppendRequest(frames, &Request{ID: 2, Op: OpBegin, Mode: ModeSync})
		for i := 0; i < 8192; i++ {
			frames = AppendRequest(frames, &Request{ID: uint64(3 + i), Op: OpRead, Table: 1, Key: 1})
		}
		nc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		nc.Write(frames) // a late write error is fine: the server may kill us first
		waitStat(t, "write-timeout counter", func() bool { return srv.Stats().WriteTimeouts >= 1 })
		assertHealthy(t, addr)
	})

	// All abuse closed only its own connection: the server's error
	// counters match the abuse delivered, and nothing else died.
	st := srv.Stats()
	if st.Oversized != 1 || st.Truncated < 1 || st.UnknownOps != 1 || st.WriteTimeouts < 1 {
		t.Fatalf("unexpected abuse counters: %+v", st)
	}
}

// assertConnClosed asserts the server has hung up on nc.
func assertConnClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := nc.Read(buf); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatal("server did not close the abusive connection")
			}
			return
		}
	}
}

// TestStatsOverWire asserts the metrics page carries both engine and
// wire counters with sane values.
func TestStatsOverWire(t *testing.T) {
	_, _, addr := startServer(t, aether.Options{}, ServerOptions{})
	cl, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	s, err := cl.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.Close()
	tbl, err := s.CreateTable("kv")
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := s.Insert(tbl, 9, u64(9)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	m, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, key := range []string{"aether_commits", "aether_log_flushes", "wire_accepted", "wire_frames_in", "wire_commits_acked"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics page missing %s (got %d keys)", key, len(m))
		}
	}
	if m["aether_commits"] < 1 || m["wire_commits_acked"] < 1 {
		t.Fatalf("commit not visible in metrics: %v", m)
	}
}

// TestErrorMapping asserts engine sentinels round-trip the wire as
// errors.Is-able values.
func TestErrorMapping(t *testing.T) {
	_, _, addr := startServer(t, aether.Options{}, ServerOptions{})
	cl, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	s, err := cl.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.Close()
	tbl, err := s.CreateTable("kv")
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := s.Read(tbl, 404); !errors.Is(err, aether.ErrKeyNotFound) {
		t.Fatalf("read missing key: %v, want ErrKeyNotFound", err)
	}
	if err := s.Insert(tbl, 5, u64(5)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := s.Insert(tbl, 5, u64(5)); !errors.Is(err, aether.ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v, want ErrDuplicateKey", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// Data ops with no transaction open are refused with a RemoteError
	// carrying StatusNoTxn.
	var re *RemoteError
	if err := s.Insert(tbl, 6, u64(6)); !errors.As(err, &re) || re.Status != StatusNoTxn {
		t.Fatalf("insert outside txn: %v, want StatusNoTxn", err)
	}
	// An unknown table name maps to StatusNoTable.
	if _, err := s.OpenTable("nope"); !errors.As(err, &re) || re.Status != StatusNoTable {
		t.Fatalf("open missing table: %v, want StatusNoTable", err)
	}
}

// TestScanOverWire round-trips a range scan.
func TestScanOverWire(t *testing.T) {
	_, _, addr := startServer(t, aether.Options{}, ServerOptions{})
	cl, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	s, err := cl.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.Close()
	tbl, err := s.CreateTable("kv")
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := s.Insert(tbl, i, u64(i*100)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	rows, err := s.Scan(tbl, 5, 14, 0)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("scan returned %d rows, want 10", len(rows))
	}
	for i, r := range rows {
		want := uint64(5 + i)
		if r.Key != want || binary.BigEndian.Uint64(r.Row) != want*100 {
			t.Fatalf("row %d = key %d, want %d", i, r.Key, want)
		}
	}
	// MaxRows caps the result.
	rows, err = s.Scan(tbl, 0, 99, 3)
	if err != nil {
		t.Fatalf("bounded scan: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("bounded scan returned %d rows, want 3", len(rows))
	}
	if err := s.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
}
