package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aether/internal/lockmgr"
	"aether/internal/txn"
)

// Client is one closed-loop client: a goroutine that runs transactions
// back to back on its own agent context, exactly like a Shore-MT agent
// thread serving one client connection.
type Client struct {
	// ID is the client index, 0-based.
	ID int
	// Agent is the client's transaction context.
	Agent *txn.Agent
	// Rng is the client's private random stream.
	Rng *rand.Rand

	drv *driver
}

// Body is one transaction execution. It begins, runs and finishes
// (commit via c.CommitTxn, or abort) a single transaction. A returned
// error other than those from CommitTxn counts as an abort.
type Body func(c *Client) error

// Options configures a closed-loop run.
type Options struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Duration is how long to drive load.
	Duration time.Duration
	// Mode is the commit protocol clients use via CommitTxn.
	Mode txn.CommitMode
	// Seed makes runs reproducible (per-client streams derive from it).
	Seed int64
}

// Result is what a run measured.
type Result struct {
	// Completed counts transactions whose commit was acknowledged
	// durably (or instantly, for CommitAsync) before the run drained.
	Completed int64
	// Aborted counts aborted transactions (deadlock victims included).
	Aborted int64
	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration
	// BusyTime is the wall-clock the clients spent NOT blocked in the
	// body (total across clients). Utilization estimates derive from it.
	BusyTime time.Duration
	// Switches counts agent-thread scheduling events (blocking commit
	// waits plus blocking lock waits) during the run.
	Switches int64
	// CommitBlocks counts only the log-flush blocks — the per-commit
	// context switches flush pipelining eliminates (Figure 4's metric).
	CommitBlocks int64
	// LockBlocks counts blocking lock waits.
	LockBlocks int64
	// Flushes counts log device syncs during the run.
	Flushes int64
}

// CommitBlockRate returns commit-blocking scheduling events per second.
func (r Result) CommitBlockRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.CommitBlocks) / r.Elapsed.Seconds()
}

// Throughput returns completed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// Utilization returns the average number of busy clients (an estimate of
// CPUs kept busy, before capping at the machine's core count).
func (r Result) Utilization() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.BusyTime.Seconds() / r.Elapsed.Seconds()
}

// SwitchRate returns scheduling events per second.
func (r Result) SwitchRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Switches) / r.Elapsed.Seconds()
}

// String renders the one-line summary experiment tables print.
func (r Result) String() string {
	return fmt.Sprintf("%.0f tps (completed %d, aborted %d, util %.1f, %.0f switches/s)",
		r.Throughput(), r.Completed, r.Aborted, r.Utilization(), r.SwitchRate())
}

type driver struct {
	eng       *txn.Engine
	mode      txn.CommitMode
	completed atomic.Int64
	aborted   atomic.Int64
	inflight  sync.WaitGroup
	stopped   atomic.Bool
}

// CommitTxn commits tx under the driver's commit mode and wires the
// completion accounting. For pipelined modes it returns immediately; the
// driver waits for all outstanding acknowledgements before reporting.
func (c *Client) CommitTxn(tx *txn.Txn) error {
	d := c.drv
	d.inflight.Add(1)
	err := tx.Commit(d.mode, func(err error) {
		if err == nil {
			d.completed.Add(1)
		} else {
			d.aborted.Add(1)
		}
		d.inflight.Done()
	})
	if err != nil {
		// The synchronous part failed; the callback never fires.
		d.inflight.Done()
		d.aborted.Add(1)
	}
	return err
}

// AbortTxn aborts tx with accounting (deadlock victims call this).
func (c *Client) AbortTxn(tx *txn.Txn) error {
	err := tx.Abort()
	c.drv.aborted.Add(1)
	return err
}

// RunClosedLoop drives body with opts.Clients concurrent closed-loop
// clients for opts.Duration and reports aggregate results. It snapshots
// the engine's switch-relevant counters around the run, so results
// reflect only this run's activity.
func RunClosedLoop(eng *txn.Engine, opts Options, body Body) Result {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	d := &driver{eng: eng, mode: opts.Mode}

	commitBlocks0 := eng.Log().Stats().SyncWaiters.Load()
	lockBlocks0 := eng.Locks().Stats().Blocks.Load()
	flushes0 := eng.Log().Stats().Flushes.Load()

	var busy atomic.Int64
	start := time.Now()
	deadline := start.Add(opts.Duration)
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{
				ID:    i,
				Agent: eng.NewAgent(),
				Rng:   rand.New(rand.NewSource(opts.Seed + int64(i)*104729 + 1)),
				drv:   d,
			}
			defer c.Agent.Close()
			var clientBusy time.Duration
			for time.Now().Before(deadline) && !d.stopped.Load() {
				t0 := time.Now()
				if err := body(c); err != nil {
					d.aborted.Add(1)
				}
				clientBusy += time.Since(t0)
			}
			busy.Add(int64(clientBusy))
		}(i)
	}
	wg.Wait()
	// Drain pipelined acknowledgements so Completed is exact.
	eng.Log().Flush()
	d.inflight.Wait()
	elapsed := time.Since(start)

	commitBlocks := eng.Log().Stats().SyncWaiters.Load() - commitBlocks0
	lockBlocks := eng.Locks().Stats().Blocks.Load() - lockBlocks0
	return Result{
		Completed:    d.completed.Load(),
		Aborted:      d.aborted.Load(),
		Elapsed:      elapsed,
		BusyTime:     time.Duration(busy.Load()),
		Switches:     commitBlocks + lockBlocks,
		CommitBlocks: commitBlocks,
		LockBlocks:   lockBlocks,
		Flushes:      eng.Log().Stats().Flushes.Load() - flushes0,
	}
}

// IsDeadlock reports whether err is a deadlock-timeout abort, which
// workload bodies treat as a routine abort-and-retry.
func IsDeadlock(err error) bool {
	return errors.Is(err, lockmgr.ErrLockTimeout)
}
