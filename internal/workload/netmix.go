package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aether"
	"aether/internal/wire"
)

// This file holds the network-path variants of the TATP and TPC-B
// generators: the same tables and transaction profiles, driven over
// the wire protocol by external client processes instead of in-process
// goroutines. Two deliberate deviations from the in-process bodies:
//
//   - Updates are full-row replacements generated client-side (OpUpdate
//     carries the complete new image), never read-modify-write, so no
//     transaction ever upgrades a shared lock to exclusive — the wire
//     mix measures logging and commit consolidation, not upgrade
//     deadlocks.
//   - TPC-B's balance arithmetic is therefore not preserved (each
//     update writes a fresh row rather than incrementing the stored
//     balance); the lock and log footprint per transaction is
//     identical, which is what the benchmark measures.

// NetTATP is the TATP subscriber mix over the wire: UpdateLocation
// (the paper's log-intensive hot transaction) against the subscriber
// table, with a slice of read-only GetSubscriberData.
type NetTATP struct {
	// Subscribers is the scale factor; clients must be configured with
	// the same value the setup used.
	Subscribers int
}

// Setup creates and populates the subscriber table through the public
// API (run server-side, before clients connect).
func (w *NetTATP) Setup(db *aether.DB) error {
	if w.Subscribers <= 0 {
		w.Subscribers = 10000
	}
	tbl, err := db.CreateTable("tatp_subscriber")
	if err != nil {
		return err
	}
	s := db.Session()
	defer s.Close()
	tx := s.Begin()
	for sid := uint64(1); sid <= uint64(w.Subscribers); sid++ {
		if err := tx.Insert(tbl, sid, tatpRow(sid, 96, 0x5A)); err != nil {
			return fmt.Errorf("workload: load net subscriber %d: %w", sid, err)
		}
		if sid%2000 == 0 {
			if err := tx.Commit(); err != nil {
				return err
			}
			tx = s.Begin()
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return db.Checkpoint()
}

// NetTPCB is the TPC-B profile over the wire: update an account, a
// teller and a branch row, then append a history row.
type NetTPCB struct {
	// Branches is the branch count (the hot rows).
	Branches int
	// AccountsPerBranch scales the account table.
	AccountsPerBranch int
}

// Setup creates and populates the four TPC-B tables through the public
// API (run server-side, before clients connect).
func (w *NetTPCB) Setup(db *aether.DB) error {
	if w.Branches <= 0 {
		w.Branches = 10
	}
	if w.AccountsPerBranch <= 0 {
		w.AccountsPerBranch = 1000
	}
	branches, err := db.CreateTable("tpcb_branches")
	if err != nil {
		return err
	}
	tellers, err := db.CreateTable("tpcb_tellers")
	if err != nil {
		return err
	}
	accounts, err := db.CreateTable("tpcb_accounts")
	if err != nil {
		return err
	}
	if _, err := db.CreateTable("tpcb_history"); err != nil {
		return err
	}
	s := db.Session()
	defer s.Close()
	tx := s.Begin()
	rows := 0
	insert := func(tbl *aether.Table, key uint64) error {
		if err := tx.Insert(tbl, key, tpcbRow(key, 0)); err != nil {
			return err
		}
		if rows++; rows%2000 == 0 {
			if err := tx.Commit(); err != nil {
				return err
			}
			tx = s.Begin()
		}
		return nil
	}
	for b := uint64(1); b <= uint64(w.Branches); b++ {
		if err := insert(branches, b); err != nil {
			return err
		}
	}
	for t := uint64(1); t <= uint64(w.Branches*TellersPerBranch); t++ {
		if err := insert(tellers, t); err != nil {
			return err
		}
	}
	for a := uint64(1); a <= uint64(w.Branches*w.AccountsPerBranch); a++ {
		if err := insert(accounts, a); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return db.Checkpoint()
}

// NetOptions configures one client process's share of a network run.
type NetOptions struct {
	// Addr is the server's TCP address.
	Addr string
	// Workload selects the mix: "tatp" or "tpcb".
	Workload string
	// Sessions is how many connections (server-side agent threads) this
	// process drives.
	Sessions int
	// Duration is how long to drive load.
	Duration time.Duration
	// Seed makes runs reproducible and, for TPC-B, keeps history keys
	// from different client processes disjoint — give each process a
	// distinct small seed.
	Seed int64
	// Pipeline bounds in-flight commit acknowledgements per session
	// (default 16): the client keeps starting new transactions while
	// that many commits await their durable ack.
	Pipeline int
	// Subscribers is the TATP scale (must match the setup).
	Subscribers int
	// Branches and AccountsPerBranch are the TPC-B scale (must match
	// the setup).
	Branches int
	// AccountsPerBranch scales the TPC-B account table.
	AccountsPerBranch int
}

// NetResult aggregates one process's (or one whole run's) outcome.
type NetResult struct {
	// Completed counts commits whose durable acknowledgement arrived.
	Completed int64 `json:"completed"`
	// Aborted counts transactions that ended in an abort (deadlock
	// victims and refused operations included).
	Aborted int64 `json:"aborted"`
	// AckErrors counts commit acknowledgements resolved by a transport
	// failure instead of a server response — a nonzero value means
	// acks were lost and durability of those commits is unknown.
	AckErrors int64 `json:"ack_errors"`
	// ElapsedMs is the measured wall-clock interval.
	ElapsedMs int64 `json:"elapsed_ms"`
}

// Add folds other into r (aggregating per-process results).
func (r *NetResult) Add(other NetResult) {
	r.Completed += other.Completed
	r.Aborted += other.Aborted
	r.AckErrors += other.AckErrors
	if other.ElapsedMs > r.ElapsedMs {
		r.ElapsedMs = other.ElapsedMs
	}
}

// TPS returns completed transactions per second.
func (r NetResult) TPS() float64 {
	if r.ElapsedMs <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.ElapsedMs) / 1000)
}

// netBody runs one transaction's operations inside an open wire
// transaction; the caller begins and commits around it.
type netBody func(s *wire.Session, rng *rand.Rand) error

// netTATPBody returns the wire TATP mix: 80% UpdateLocation (full-row
// replace), 20% GetSubscriberData.
func netTATPBody(subscriber wire.TableID, subscribers int) netBody {
	return func(s *wire.Session, rng *rand.Rand) error {
		sid := uint64(rng.Intn(subscribers) + 1)
		if rng.Intn(100) < 80 {
			row := tatpRow(sid, 96, 0x5A)
			binary.LittleEndian.PutUint32(row[24:28], rng.Uint32()) // new location
			return s.Update(subscriber, sid, row)
		}
		_, err := s.Read(subscriber, sid)
		return err
	}
}

// netTPCBBody returns the wire TPC-B profile. History keys are made
// unique across processes and sessions by folding seed and session
// into the key's high bits.
func netTPCBBody(branches, tellers, accounts, history wire.TableID, opts NetOptions, session int, seq *atomic.Uint64) netBody {
	return func(s *wire.Session, rng *rand.Rand) error {
		b := uint64(rng.Intn(opts.Branches) + 1)
		tid := (b-1)*TellersPerBranch + uint64(rng.Intn(TellersPerBranch)) + 1
		aid := (b-1)*uint64(opts.AccountsPerBranch) + uint64(rng.Intn(opts.AccountsPerBranch)) + 1
		delta := int64(rng.Intn(1999999) - 999999)
		// Same lock order as the in-process body: account → teller →
		// branch, with the branch row the hot lock.
		if err := s.Update(accounts, aid, tpcbRow(aid, delta)); err != nil {
			return err
		}
		if err := s.Update(tellers, tid, tpcbRow(tid, delta)); err != nil {
			return err
		}
		if err := s.Update(branches, b, tpcbRow(b, delta)); err != nil {
			return err
		}
		hid := uint64(opts.Seed&0xFF)<<48 | uint64(session)<<40 | seq.Add(1)
		return s.Insert(history, hid, tpcbRow(hid, delta))
	}
}

// RunNetClients drives opts.Sessions pipelined closed-loop sessions
// against a wire server and reports this process's aggregate. Every
// commit is acknowledged exactly once: as Completed, Aborted, or (on
// transport failure) AckErrors — an ack is never silently dropped.
func RunNetClients(opts NetOptions) (NetResult, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.Pipeline <= 0 {
		opts.Pipeline = 16
	}
	if opts.Subscribers <= 0 {
		opts.Subscribers = 10000
	}
	if opts.Branches <= 0 {
		opts.Branches = 10
	}
	if opts.AccountsPerBranch <= 0 {
		opts.AccountsPerBranch = 1000
	}
	cl, err := wire.Dial(opts.Addr, wire.ClientOptions{Conns: opts.Sessions})
	if err != nil {
		return NetResult{}, err
	}
	defer cl.Close()

	var completed, aborted, ackErrors atomic.Int64
	var seq atomic.Uint64
	start := time.Now()
	deadline := start.Add(opts.Duration)
	var wg sync.WaitGroup
	errs := make(chan error, opts.Sessions)
	for i := 0; i < opts.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := cl.Session()
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			defer s.Close()

			var body netBody
			switch opts.Workload {
			case "tatp":
				subscriber, err := s.OpenTable("tatp_subscriber")
				if err != nil {
					errs <- fmt.Errorf("session %d: open tatp tables: %w", i, err)
					return
				}
				body = netTATPBody(subscriber, opts.Subscribers)
			case "tpcb":
				var ids [4]wire.TableID
				for j, name := range []string{"tpcb_branches", "tpcb_tellers", "tpcb_accounts", "tpcb_history"} {
					if ids[j], err = s.OpenTable(name); err != nil {
						errs <- fmt.Errorf("session %d: open %s: %w", i, name, err)
						return
					}
				}
				body = netTPCBBody(ids[0], ids[1], ids[2], ids[3], opts, i, &seq)
			default:
				errs <- fmt.Errorf("unknown net workload %q", opts.Workload)
				return
			}

			rng := rand.New(rand.NewSource(opts.Seed + int64(i)*104729 + 1))
			// The pipeline semaphore bounds commits in flight; slots are
			// released by the acknowledgement callbacks.
			slots := make(chan struct{}, opts.Pipeline)
			for time.Now().Before(deadline) {
				slots <- struct{}{}
				if err := s.BeginMode(wire.ModePipelined); err != nil {
					<-slots
					aborted.Add(1)
					return // draining server or dead connection: stop this session
				}
				if err := body(s, rng); err != nil {
					<-slots
					aborted.Add(1)
					s.Abort() // deadlock victim or refused op: roll back, keep going
					continue
				}
				if err := s.CommitAsync(func(err error) {
					switch {
					case err == nil:
						completed.Add(1)
					case wire.IsTransportErr(err):
						ackErrors.Add(1)
					default:
						aborted.Add(1)
					}
					<-slots
				}); err != nil {
					// The send itself failed; the callback still resolved
					// (exactly once), which released the slot and counted it.
					return
				}
			}
			// Session.Close (deferred) waits for the outstanding acks.
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return NetResult{}, err
	}
	return NetResult{
		Completed: completed.Load(),
		Aborted:   aborted.Load(),
		AckErrors: ackErrors.Load(),
		ElapsedMs: elapsed.Milliseconds(),
	}, nil
}
