package workload

import (
	"encoding/binary"
	"fmt"

	"aether/internal/txn"
)

// TATP models the telecom benchmark the paper uses for its most
// log-intensive experiments (§6.2, §6.4): seven very small transactions
// over a subscriber database. Small transactions at high rate stress
// logging and locking exactly as the paper describes. The paper uses
// 100K subscribers; tests shrink it.
type TATP struct {
	// Subscribers is the scale factor (paper: 100_000).
	Subscribers int
	// UpdateLocationOnly restricts the mix to the UpdateLocation
	// transaction, as Figures 7 and 9 do.
	UpdateLocationOnly bool

	subscriber *txn.Table // s_id → subscriber row
	accessInfo *txn.Table // s_id*4 + ai_type → access info row
	specialFac *txn.Table // s_id*4 + sf_type → special facility row
	callFwd    *txn.Table // s_id*128 + sf_type*32 + start_time → call forwarding row
}

// TATP row: key(8) | payload. Sizes chosen to keep log records near the
// paper's observed 40–264B peaks.
func tatpRow(key uint64, size int, fill byte) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b[0:8], key)
	for i := 8; i < size; i++ {
		b[i] = fill
	}
	return b
}

// Key composition for the satellite tables.
func aiKey(sid uint64, aiType int) uint64 { return sid*4 + uint64(aiType) }
func sfKey(sid uint64, sfType int) uint64 { return sid*4 + uint64(sfType) }
func cfKey(sid uint64, sfType, startTime int) uint64 {
	return sid*128 + uint64(sfType)*32 + uint64(startTime)
}

// NewTATP returns the workload at a test-friendly scale.
func NewTATP() *TATP {
	return &TATP{Subscribers: 10000}
}

// Setup creates and populates the four TATP tables per the spec's
// cardinalities (1–4 access infos and special facilities per subscriber,
// 0–3 call forwardings per special facility), then checkpoints.
func (w *TATP) Setup(eng *txn.Engine) error {
	if w.Subscribers <= 0 {
		w.Subscribers = 10000
	}
	var err error
	if w.subscriber, err = eng.CreateTable("tatp_subscriber", nil); err != nil {
		return err
	}
	if w.accessInfo, err = eng.CreateTable("tatp_access_info", nil); err != nil {
		return err
	}
	if w.specialFac, err = eng.CreateTable("tatp_special_facility", nil); err != nil {
		return err
	}
	if w.callFwd, err = eng.CreateTable("tatp_call_forwarding", nil); err != nil {
		return err
	}

	ag := eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	rows := 0
	maybeCommit := func() error {
		rows++
		if rows%2000 == 0 {
			if err := tx.Commit(txn.CommitSync, nil); err != nil {
				return err
			}
			tx = ag.Begin()
		}
		return nil
	}
	// Deterministic pseudo-random cardinalities (reproducible loads).
	h := uint64(88172645463325252)
	next := func(n int) int {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		return int(h % uint64(n))
	}
	for s := 1; s <= w.Subscribers; s++ {
		sid := uint64(s)
		if err := tx.Insert(w.subscriber, sid, tatpRow(sid, 96, 0x5A)); err != nil {
			return fmt.Errorf("workload: load subscriber %d: %w", s, err)
		}
		if err := maybeCommit(); err != nil {
			return err
		}
		for ai := 0; ai <= next(4); ai++ {
			if err := tx.Insert(w.accessInfo, aiKey(sid, ai), tatpRow(aiKey(sid, ai), 40, 0xA1)); err != nil {
				return err
			}
			if err := maybeCommit(); err != nil {
				return err
			}
		}
		for sf := 0; sf <= next(4); sf++ {
			if err := tx.Insert(w.specialFac, sfKey(sid, sf), tatpRow(sfKey(sid, sf), 40, 0xB2)); err != nil {
				return err
			}
			if err := maybeCommit(); err != nil {
				return err
			}
			for cf := 0; cf < next(4); cf++ {
				k := cfKey(sid, sf, cf*8)
				if err := tx.Insert(w.callFwd, k, tatpRow(k, 40, 0xC3)); err != nil {
					return err
				}
				if err := maybeCommit(); err != nil {
					return err
				}
			}
		}
	}
	if err := tx.Commit(txn.CommitSync, nil); err != nil {
		return err
	}
	return eng.Checkpoint()
}

// Body returns the driver body running the standard TATP mix
// (GetSubscriberData 35%, GetNewDestination 10%, GetAccessData 35%,
// UpdateSubscriberData 2%, UpdateLocation 14%, InsertCallForwarding 2%,
// DeleteCallForwarding 2%), or UpdateLocation only.
func (w *TATP) Body() Body {
	return func(c *Client) error {
		sid := uint64(c.Rng.Intn(w.Subscribers) + 1)
		var kind int
		if w.UpdateLocationOnly {
			kind = 4
		} else {
			p := c.Rng.Intn(100)
			switch {
			case p < 35:
				kind = 0
			case p < 45:
				kind = 1
			case p < 80:
				kind = 2
			case p < 82:
				kind = 3
			case p < 96:
				kind = 4
			case p < 98:
				kind = 5
			default:
				kind = 6
			}
		}
		tx := c.Agent.Begin()
		var err error
		switch kind {
		case 0: // GetSubscriberData (read-only)
			_, err = tx.Read(w.subscriber, sid)
		case 1: // GetNewDestination (read-only, may miss)
			sf := c.Rng.Intn(4)
			if _, e := tx.Read(w.specialFac, sfKey(sid, sf)); e == nil {
				_, _ = tx.Read(w.callFwd, cfKey(sid, sf, c.Rng.Intn(3)*8))
			}
		case 2: // GetAccessData (read-only, may miss)
			_, _ = tx.Read(w.accessInfo, aiKey(sid, c.Rng.Intn(4)))
		case 3: // UpdateSubscriberData: subscriber bit + special facility
			err = tx.Update(w.subscriber, sid, func(r []byte) ([]byte, error) {
				out := append([]byte(nil), r...)
				out[16] = byte(c.Rng.Intn(2))
				return out, nil
			})
			if err == nil {
				e := tx.Update(w.specialFac, sfKey(sid, c.Rng.Intn(4)), func(r []byte) ([]byte, error) {
					out := append([]byte(nil), r...)
					out[17] = byte(c.Rng.Intn(256))
					return out, nil
				})
				// Missing special facility rows are a spec-expected miss.
				if e != nil && e != txn.ErrKeyNotFound && !IsDeadlock(e) {
					err = e
				} else if IsDeadlock(e) {
					err = e
				}
			}
		case 4: // UpdateLocation — the log-intensive hot transaction
			err = tx.Update(w.subscriber, sid, func(r []byte) ([]byte, error) {
				out := append([]byte(nil), r...)
				binary.LittleEndian.PutUint32(out[24:28], c.Rng.Uint32())
				return out, nil
			})
		case 5: // InsertCallForwarding
			if _, e := tx.Read(w.subscriber, sid); e != nil {
				err = e
			} else {
				k := cfKey(sid, c.Rng.Intn(4), c.Rng.Intn(3)*8)
				e := tx.Insert(w.callFwd, k, tatpRow(k, 40, 0xC3))
				if e != nil && e != txn.ErrDuplicateKey && !IsDeadlock(e) {
					err = e
				} else if IsDeadlock(e) {
					err = e
				}
			}
		case 6: // DeleteCallForwarding
			k := cfKey(sid, c.Rng.Intn(4), c.Rng.Intn(3)*8)
			e := tx.Delete(w.callFwd, k)
			if e != nil && e != txn.ErrKeyNotFound && !IsDeadlock(e) {
				err = e
			} else if IsDeadlock(e) {
				err = e
			}
		}
		if err != nil {
			c.AbortTxn(tx)
			if IsDeadlock(err) || err == txn.ErrKeyNotFound {
				return nil
			}
			return err
		}
		c.CommitTxn(tx)
		return nil
	}
}
