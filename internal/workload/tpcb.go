package workload

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"aether/internal/txn"
)

// TPCB is the TPC-B banking stress test the paper uses to evaluate ELR
// and flush pipelining (§3.2, §4.2): one small update transaction over
// branches, tellers, accounts and an append-only history. The paper runs
// a 100-teller dataset (10 branches); the branch row is the contention
// point, and the AccessSkew knob applies the zipfian skew Figure 3
// sweeps to branch (and teller/account) selection.
type TPCB struct {
	// Branches is the scale factor (10 tellers and AccountsPerBranch
	// accounts per branch). The paper's dataset: 10.
	Branches int
	// AccountsPerBranch scales the account table (TPC-B specifies
	// 100,000; tests shrink it).
	AccountsPerBranch int
	// AccessSkew is the zipfian s parameter for picking the branch
	// (0 = uniform, the TPC-B default behavior).
	AccessSkew float64

	branches *txn.Table
	tellers  *txn.Table
	accounts *txn.Table
	history  *txn.Table

	branchZipf *Zipf
	historySeq atomic.Uint64
}

// TPCB row layouts: key(8) | balance(8) | filler to ~100B per spec
// intent (shrunk to keep log records near the paper's observed sizes).
const tpcbRowSize = 64

func tpcbRow(key uint64, balance int64) []byte {
	b := make([]byte, tpcbRowSize)
	binary.LittleEndian.PutUint64(b[0:8], key)
	binary.LittleEndian.PutUint64(b[8:16], uint64(balance))
	return b
}

func tpcbBalance(row []byte) int64 {
	return int64(binary.LittleEndian.Uint64(row[8:16]))
}

func tpcbSetBalance(row []byte, bal int64) []byte {
	out := append([]byte(nil), row...)
	binary.LittleEndian.PutUint64(out[8:16], uint64(bal))
	return out
}

// TellersPerBranch is fixed by the TPC-B specification.
const TellersPerBranch = 10

// NewTPCB returns a workload with the paper's defaults: 10 branches
// (100 tellers), uniform access.
func NewTPCB() *TPCB {
	return &TPCB{Branches: 10, AccountsPerBranch: 1000}
}

// Setup creates and populates the four tables. Loading commits in
// batches through the normal transactional path, then checkpoints so
// the load is archived.
func (w *TPCB) Setup(eng *txn.Engine) error {
	if w.Branches <= 0 {
		w.Branches = 10
	}
	if w.AccountsPerBranch <= 0 {
		w.AccountsPerBranch = 1000
	}
	w.branchZipf = NewZipf(w.Branches, w.AccessSkew)

	var err error
	if w.branches, err = eng.CreateTable("tpcb_branches", nil); err != nil {
		return err
	}
	if w.tellers, err = eng.CreateTable("tpcb_tellers", nil); err != nil {
		return err
	}
	if w.accounts, err = eng.CreateTable("tpcb_accounts", nil); err != nil {
		return err
	}
	if w.history, err = eng.CreateTable("tpcb_history", nil); err != nil {
		return err
	}

	ag := eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	rows := 0
	commit := func() error {
		if err := tx.Commit(txn.CommitSync, nil); err != nil {
			return err
		}
		tx = ag.Begin()
		return nil
	}
	for b := 1; b <= w.Branches; b++ {
		if err := tx.Insert(w.branches, uint64(b), tpcbRow(uint64(b), 0)); err != nil {
			return fmt.Errorf("workload: load branch %d: %w", b, err)
		}
		for t := 0; t < TellersPerBranch; t++ {
			tid := uint64((b-1)*TellersPerBranch + t + 1)
			if err := tx.Insert(w.tellers, tid, tpcbRow(tid, 0)); err != nil {
				return fmt.Errorf("workload: load teller %d: %w", tid, err)
			}
		}
		for a := 0; a < w.AccountsPerBranch; a++ {
			aid := uint64((b-1)*w.AccountsPerBranch + a + 1)
			if err := tx.Insert(w.accounts, aid, tpcbRow(aid, 0)); err != nil {
				return fmt.Errorf("workload: load account %d: %w", aid, err)
			}
			rows++
			if rows%2000 == 0 {
				if err := commit(); err != nil {
					return err
				}
			}
		}
	}
	if err := tx.Commit(txn.CommitSync, nil); err != nil {
		return err
	}
	return eng.Checkpoint()
}

// Body returns the transaction body for the driver: the TPC-B profile
// transaction (update account, teller and branch balances; append a
// history row). Deadlock victims abort and count as aborted.
func (w *TPCB) Body() Body {
	return func(c *Client) error {
		// Skewed branch pick; teller and account uniform within it.
		b := uint64(w.branchZipf.Draw(c.Rng) + 1)
		tid := (b-1)*TellersPerBranch + uint64(c.Rng.Intn(TellersPerBranch)) + 1
		aid := (b-1)*uint64(w.AccountsPerBranch) + uint64(c.Rng.Intn(w.AccountsPerBranch)) + 1
		delta := int64(c.Rng.Intn(1999999) - 999999)

		tx := c.Agent.Begin()
		// Lock order: account → teller → branch (uniform order prevents
		// most deadlocks; the branch row is the hot lock ELR relieves).
		err := tx.Update(w.accounts, aid, func(r []byte) ([]byte, error) {
			return tpcbSetBalance(r, tpcbBalance(r)+delta), nil
		})
		if err == nil {
			err = tx.Update(w.tellers, tid, func(r []byte) ([]byte, error) {
				return tpcbSetBalance(r, tpcbBalance(r)+delta), nil
			})
		}
		if err == nil {
			err = tx.Update(w.branches, b, func(r []byte) ([]byte, error) {
				return tpcbSetBalance(r, tpcbBalance(r)+delta), nil
			})
		}
		if err == nil {
			hid := w.historySeq.Add(1)
			err = tx.Insert(w.history, hid, tpcbRow(hid, delta))
		}
		if err != nil {
			c.AbortTxn(tx)
			if IsDeadlock(err) {
				return nil // routine victim, already counted
			}
			return err
		}
		c.CommitTxn(tx)
		return nil
	}
}

// ConsistencyCheck verifies TPC-B's invariant: the sum of account
// balances equals the sum of teller balances equals the sum of branch
// balances (all started at zero and every transaction moves the same
// delta through all three).
func (w *TPCB) ConsistencyCheck(eng *txn.Engine) error {
	ag := eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	defer tx.Commit(txn.CommitSync, nil)

	sumTable := func(t *txn.Table, n uint64) (int64, error) {
		var sum int64
		for k := uint64(1); k <= n; k++ {
			row, err := tx.Read(t, k)
			if err != nil {
				return 0, fmt.Errorf("workload: consistency read %s/%d: %w", t.Name, k, err)
			}
			sum += tpcbBalance(row)
		}
		return sum, nil
	}
	bSum, err := sumTable(w.branches, uint64(w.Branches))
	if err != nil {
		return err
	}
	tSum, err := sumTable(w.tellers, uint64(w.Branches*TellersPerBranch))
	if err != nil {
		return err
	}
	aSum, err := sumTable(w.accounts, uint64(w.Branches*w.AccountsPerBranch))
	if err != nil {
		return err
	}
	if bSum != tSum || tSum != aSum {
		return fmt.Errorf("workload: TPC-B invariant violated: branches=%d tellers=%d accounts=%d",
			bSum, tSum, aSum)
	}
	return nil
}

// Tables returns the workload's tables (for recovery re-registration
// order: branches, tellers, accounts, history).
func (w *TPCB) Tables() []*txn.Table {
	return []*txn.Table{w.branches, w.tellers, w.accounts, w.history}
}
