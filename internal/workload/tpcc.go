package workload

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"aether/internal/txn"
)

// TPCC is the TPC-C subset (NewOrder + Payment) used to generate the
// inter-log dependency trace of Appendix A.5 / Figure 13. It is not a
// compliant TPC-C implementation — it exists to produce a realistic log:
// hot pages (warehouse and district rows), medium pages (customer,
// stock) and append streams (orders, order lines, history), with the
// page-sharing pattern that makes a distributed log intractable.
type TPCC struct {
	// Warehouses is the scale factor.
	Warehouses int
	// DistrictsPerWarehouse is fixed at 10 by the spec.
	DistrictsPerWarehouse int
	// CustomersPerDistrict (spec: 3000; tests shrink).
	CustomersPerDistrict int
	// ItemsPerWarehouse models the stock table (spec: 100_000; shrunk).
	ItemsPerWarehouse int

	warehouse *txn.Table
	district  *txn.Table
	customer  *txn.Table
	stock     *txn.Table
	orders    *txn.Table
	orderLine *txn.Table
	history   *txn.Table

	orderSeq   atomic.Uint64
	historySeq atomic.Uint64
}

// NewTPCC returns a small-scale TPC-C subset.
func NewTPCC() *TPCC {
	return &TPCC{
		Warehouses:            4,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  300,
		ItemsPerWarehouse:     1000,
	}
}

func tpccRow(key uint64, size int) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b[0:8], key)
	return b
}

func (w *TPCC) dKey(wid, did int) uint64 { return uint64(wid)*100 + uint64(did) }
func (w *TPCC) cKey(wid, did, cid int) uint64 {
	return uint64(wid)*10_000_000 + uint64(did)*100_000 + uint64(cid)
}
func (w *TPCC) sKey(wid, iid int) uint64 { return uint64(wid)*1_000_000 + uint64(iid) }

// Setup creates and loads the tables, then checkpoints.
func (w *TPCC) Setup(eng *txn.Engine) error {
	var err error
	if w.warehouse, err = eng.CreateTable("tpcc_warehouse", nil); err != nil {
		return err
	}
	if w.district, err = eng.CreateTable("tpcc_district", nil); err != nil {
		return err
	}
	if w.customer, err = eng.CreateTable("tpcc_customer", nil); err != nil {
		return err
	}
	if w.stock, err = eng.CreateTable("tpcc_stock", nil); err != nil {
		return err
	}
	if w.orders, err = eng.CreateTable("tpcc_orders", nil); err != nil {
		return err
	}
	if w.orderLine, err = eng.CreateTable("tpcc_order_line", nil); err != nil {
		return err
	}
	if w.history, err = eng.CreateTable("tpcc_history", nil); err != nil {
		return err
	}

	ag := eng.NewAgent()
	defer ag.Close()
	tx := ag.Begin()
	rows := 0
	maybeCommit := func() error {
		rows++
		if rows%2000 == 0 {
			if err := tx.Commit(txn.CommitSync, nil); err != nil {
				return err
			}
			tx = ag.Begin()
		}
		return nil
	}
	for wid := 1; wid <= w.Warehouses; wid++ {
		if err := tx.Insert(w.warehouse, uint64(wid), tpccRow(uint64(wid), 96)); err != nil {
			return fmt.Errorf("workload: load warehouse %d: %w", wid, err)
		}
		for did := 1; did <= w.DistrictsPerWarehouse; did++ {
			if err := tx.Insert(w.district, w.dKey(wid, did), tpccRow(w.dKey(wid, did), 96)); err != nil {
				return err
			}
			if err := maybeCommit(); err != nil {
				return err
			}
			for cid := 1; cid <= w.CustomersPerDistrict; cid++ {
				if err := tx.Insert(w.customer, w.cKey(wid, did, cid), tpccRow(w.cKey(wid, did, cid), 128)); err != nil {
					return err
				}
				if err := maybeCommit(); err != nil {
					return err
				}
			}
		}
		for iid := 1; iid <= w.ItemsPerWarehouse; iid++ {
			if err := tx.Insert(w.stock, w.sKey(wid, iid), tpccRow(w.sKey(wid, iid), 64)); err != nil {
				return err
			}
			if err := maybeCommit(); err != nil {
				return err
			}
		}
	}
	if err := tx.Commit(txn.CommitSync, nil); err != nil {
		return err
	}
	return eng.Checkpoint()
}

// Body returns the driver body: 50% NewOrder, 50% Payment (the two
// transactions dominating TPC-C's log traffic).
func (w *TPCC) Body() Body {
	return func(c *Client) error {
		wid := c.Rng.Intn(w.Warehouses) + 1
		did := c.Rng.Intn(w.DistrictsPerWarehouse) + 1
		cid := c.Rng.Intn(w.CustomersPerDistrict) + 1
		tx := c.Agent.Begin()
		var err error
		if c.Rng.Intn(2) == 0 {
			err = w.newOrder(c, tx, wid, did, cid)
		} else {
			err = w.payment(c, tx, wid, did, cid)
		}
		if err != nil {
			c.AbortTxn(tx)
			if IsDeadlock(err) {
				return nil
			}
			return err
		}
		c.CommitTxn(tx)
		return nil
	}
}

func (w *TPCC) newOrder(c *Client, tx *txn.Txn, wid, did, cid int) error {
	if _, err := tx.Read(w.warehouse, uint64(wid)); err != nil {
		return err
	}
	// District next-order-id bump: the hot update.
	if err := tx.Update(w.district, w.dKey(wid, did), func(r []byte) ([]byte, error) {
		out := append([]byte(nil), r...)
		binary.LittleEndian.PutUint32(out[8:12], binary.LittleEndian.Uint32(r[8:12])+1)
		return out, nil
	}); err != nil {
		return err
	}
	if _, err := tx.Read(w.customer, w.cKey(wid, did, cid)); err != nil {
		return err
	}
	oid := w.orderSeq.Add(1)
	if err := tx.Insert(w.orders, oid, tpccRow(oid, 48)); err != nil {
		return err
	}
	lines := 5 + c.Rng.Intn(11)
	for l := 0; l < lines; l++ {
		iid := c.Rng.Intn(w.ItemsPerWarehouse) + 1
		// 1% remote warehouse, per spec — the cross-log dependency source.
		swid := wid
		if w.Warehouses > 1 && c.Rng.Intn(100) == 0 {
			swid = c.Rng.Intn(w.Warehouses) + 1
		}
		if err := tx.Update(w.stock, w.sKey(swid, iid), func(r []byte) ([]byte, error) {
			out := append([]byte(nil), r...)
			binary.LittleEndian.PutUint32(out[8:12], binary.LittleEndian.Uint32(r[8:12])+1)
			return out, nil
		}); err != nil {
			return err
		}
		olk := oid*16 + uint64(l)
		if err := tx.Insert(w.orderLine, olk, tpccRow(olk, 56)); err != nil {
			return err
		}
	}
	return nil
}

func (w *TPCC) payment(c *Client, tx *txn.Txn, wid, did, cid int) error {
	if err := tx.Update(w.warehouse, uint64(wid), func(r []byte) ([]byte, error) {
		out := append([]byte(nil), r...)
		binary.LittleEndian.PutUint64(out[8:16], binary.LittleEndian.Uint64(r[8:16])+100)
		return out, nil
	}); err != nil {
		return err
	}
	if err := tx.Update(w.district, w.dKey(wid, did), func(r []byte) ([]byte, error) {
		out := append([]byte(nil), r...)
		binary.LittleEndian.PutUint64(out[16:24], binary.LittleEndian.Uint64(r[16:24])+100)
		return out, nil
	}); err != nil {
		return err
	}
	if err := tx.Update(w.customer, w.cKey(wid, did, cid), func(r []byte) ([]byte, error) {
		out := append([]byte(nil), r...)
		binary.LittleEndian.PutUint64(out[16:24], binary.LittleEndian.Uint64(r[16:24])-100)
		return out, nil
	}); err != nil {
		return err
	}
	hid := w.historySeq.Add(1)
	return tx.Insert(w.history, hid, tpccRow(hid, 48))
}
