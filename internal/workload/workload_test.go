package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aether/internal/core"
	"aether/internal/lockmgr"
	"aether/internal/logbuf"
	"aether/internal/logdev"
	"aether/internal/storage"
	"aether/internal/txn"
)

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Draw(rng)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("bucket %d got %.3f, want ~0.1", i, frac)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z2 := NewZipf(100, 2.0)
	hot := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if z2.Draw(rng) == 0 {
			hot++
		}
	}
	// At s=2 over 100 items, item 0 holds ~61% of the mass.
	if frac := float64(hot) / draws; frac < 0.55 || frac > 0.67 {
		t.Fatalf("hot fraction %.3f, want ~0.61", frac)
	}
}

func TestZipfEightyTwenty(t *testing.T) {
	// The paper: s≈0.85 corresponds to the 80/20 rule. Check the top 20%
	// of 1000 items carries very roughly 80% of the mass at s=0.85.
	z := NewZipf(1000, 0.85)
	share := z.TopShare(200)
	if share < 0.6 || share > 0.9 {
		t.Fatalf("top-20%% share %.3f at s=0.85, want roughly 0.8", share)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: draws always land in range, and CDF is monotone.
func TestQuickZipfInRange(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8, seed int64) bool {
		n := int(nRaw%100) + 1
		s := float64(sRaw%50) / 10.0
		z := NewZipf(n, s)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			v := z.Draw(rng)
			if v < 0 || v >= n {
				return false
			}
		}
		for i := 1; i < n; i++ {
			if z.cdf[i] < z.cdf[i-1] {
				return false
			}
		}
		return z.cdf[n-1] == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newEngine(t *testing.T) *txn.Engine {
	t.Helper()
	dev := logdev.NewMem(logdev.ProfileMemory)
	lm, err := core.New(core.Config{
		Buffer: logbuf.Config{Variant: logbuf.VariantCD, Size: 1 << 22},
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := txn.NewEngine(txn.Config{
		Log:     lm,
		Locks:   lockmgr.New(lockmgr.Config{DeadlockTimeout: 200 * time.Millisecond, SLI: true}),
		Store:   storage.NewStore(),
		Archive: storage.NewMemArchive(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lm.Close() })
	return eng
}

func TestTPCBRunsAndStaysConsistent(t *testing.T) {
	eng := newEngine(t)
	w := &TPCB{Branches: 4, AccountsPerBranch: 200}
	if err := w.Setup(eng); err != nil {
		t.Fatal(err)
	}
	res := RunClosedLoop(eng, Options{
		Clients:  8,
		Duration: 300 * time.Millisecond,
		Mode:     txn.CommitPipelined,
	}, w.Body())
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	if err := w.ConsistencyCheck(eng); err != nil {
		t.Fatal(err)
	}
	t.Logf("TPC-B: %v", res)
}

func TestTPCBSkewedStillConsistent(t *testing.T) {
	eng := newEngine(t)
	w := &TPCB{Branches: 4, AccountsPerBranch: 100, AccessSkew: 2.0}
	if err := w.Setup(eng); err != nil {
		t.Fatal(err)
	}
	res := RunClosedLoop(eng, Options{
		Clients:  8,
		Duration: 300 * time.Millisecond,
		Mode:     txn.CommitSyncELR,
	}, w.Body())
	if res.Completed == 0 {
		t.Fatal("no transactions completed under skew")
	}
	if err := w.ConsistencyCheck(eng); err != nil {
		t.Fatal(err)
	}
}

func TestTPCBAllCommitModes(t *testing.T) {
	for _, mode := range []txn.CommitMode{txn.CommitSync, txn.CommitSyncELR, txn.CommitAsync, txn.CommitPipelined} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			eng := newEngine(t)
			w := &TPCB{Branches: 2, AccountsPerBranch: 100}
			if err := w.Setup(eng); err != nil {
				t.Fatal(err)
			}
			res := RunClosedLoop(eng, Options{
				Clients: 4, Duration: 200 * time.Millisecond, Mode: mode,
			}, w.Body())
			if res.Completed == 0 {
				t.Fatalf("mode %v: nothing completed", mode)
			}
			if err := w.ConsistencyCheck(eng); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTATPRunsFullMix(t *testing.T) {
	eng := newEngine(t)
	w := &TATP{Subscribers: 500}
	if err := w.Setup(eng); err != nil {
		t.Fatal(err)
	}
	res := RunClosedLoop(eng, Options{
		Clients:  8,
		Duration: 300 * time.Millisecond,
		Mode:     txn.CommitPipelined,
	}, w.Body())
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	t.Logf("TATP: %v", res)
}

func TestTATPUpdateLocationOnly(t *testing.T) {
	eng := newEngine(t)
	w := &TATP{Subscribers: 500, UpdateLocationOnly: true}
	if err := w.Setup(eng); err != nil {
		t.Fatal(err)
	}
	res := RunClosedLoop(eng, Options{
		Clients:  8,
		Duration: 200 * time.Millisecond,
		Mode:     txn.CommitPipelined,
	}, w.Body())
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	// UpdateLocation writes every transaction: inserts must accumulate.
	if eng.Log().Stats().Inserts.Load() == 0 {
		t.Fatal("no log inserts from an update-only workload")
	}
}

func TestTPCCRuns(t *testing.T) {
	eng := newEngine(t)
	w := &TPCC{Warehouses: 2, DistrictsPerWarehouse: 4, CustomersPerDistrict: 50, ItemsPerWarehouse: 200}
	if err := w.Setup(eng); err != nil {
		t.Fatal(err)
	}
	res := RunClosedLoop(eng, Options{
		Clients:  6,
		Duration: 300 * time.Millisecond,
		Mode:     txn.CommitPipelined,
	}, w.Body())
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	t.Logf("TPC-C lite: %v", res)
}

func TestDriverCountsSwitches(t *testing.T) {
	eng := newEngine(t)
	w := &TPCB{Branches: 2, AccountsPerBranch: 100}
	if err := w.Setup(eng); err != nil {
		t.Fatal(err)
	}
	// Sync commits block once per transaction.
	sw0 := eng.Log().Stats().SyncWaiters.Load()
	res := RunClosedLoop(eng, Options{
		Clients: 4, Duration: 200 * time.Millisecond, Mode: txn.CommitSync,
	}, w.Body())
	syncBlocks := eng.Log().Stats().SyncWaiters.Load() - sw0
	if syncBlocks < res.Completed {
		t.Fatalf("sync mode: %d commit blocks for %d commits", syncBlocks, res.Completed)
	}
	// Pipelined commits never block the agent on the log (lock waits may
	// still block; they are counted separately).
	sw0 = eng.Log().Stats().SyncWaiters.Load()
	res2 := RunClosedLoop(eng, Options{
		Clients: 4, Duration: 200 * time.Millisecond, Mode: txn.CommitPipelined,
	}, w.Body())
	if res2.Completed == 0 {
		t.Fatal("pipelined run completed nothing")
	}
	if got := eng.Log().Stats().SyncWaiters.Load() - sw0; got != 0 {
		t.Fatalf("pipelined mode: %d agent commit blocks, want 0", got)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Completed: 100, Elapsed: 2 * time.Second, BusyTime: 4 * time.Second, Switches: 50}
	if r.Throughput() != 50 {
		t.Fatalf("throughput %f", r.Throughput())
	}
	if r.Utilization() != 2 {
		t.Fatalf("utilization %f", r.Utilization())
	}
	if r.SwitchRate() != 25 {
		t.Fatalf("switch rate %f", r.SwitchRate())
	}
	var zero Result
	if zero.Throughput() != 0 || zero.Utilization() != 0 || zero.SwitchRate() != 0 {
		t.Fatal("zero result helpers must be 0")
	}
}
