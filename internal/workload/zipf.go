// Package workload implements the paper's evaluation workloads — TPC-B
// (§3.2, §4.2), TATP (§6.2, §6.4) and a TPC-C subset (§A.5) — plus the
// zipfian access-skew generator Figure 3 sweeps and the closed-loop
// client driver all experiments run under.
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws values in [0, n) with probability proportional to
// 1/(rank+1)^s. Unlike math/rand's Zipf it supports the full s ∈ [0, ∞)
// range the paper's Figure 3 sweeps (s=0 is uniform; rand.Zipf requires
// s>1).
//
// Implementation: a precomputed CDF table with binary search. Build cost
// is O(n); draw cost O(log n). One Zipf is safe for concurrent use (it is
// immutable after construction); pass a per-client *rand.Rand to Draw.
type Zipf struct {
	n   int
	s   float64
	cdf []float64 // cdf[i] = P(value <= i)
}

// NewZipf builds a generator over n items with skew s. n must be > 0 and
// s >= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf needs n > 0")
	}
	if s < 0 {
		panic("workload: Zipf needs s >= 0")
	}
	z := &Zipf{n: n, s: s, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	z.cdf[n-1] = 1.0
	return z
}

// N returns the domain size.
func (z *Zipf) N() int { return z.n }

// S returns the skew parameter.
func (z *Zipf) S() float64 { return z.s }

// Draw returns a skewed value in [0, n). Rank 0 is the hottest item.
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// TopShare returns the probability mass of the hottest k items — handy
// for relating s to the "80% of accesses hit 20% of data" intuition the
// paper cites (s≈0.85).
func (z *Zipf) TopShare(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= z.n {
		return 1
	}
	return z.cdf[k-1]
}
