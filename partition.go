// partition.go is the public face of partitioned (multi-log) operation:
// Options.LogPartitions >= 2 shards the write-ahead log across N
// independent devices — one flush daemon, group-commit stream, durable
// watermark and archiver lane each — coordinated by core.MultiLog, which
// stamps every record with a global sequence number and physically
// enforces inter-log flush dependencies (paper Appendix A.5).
package aether

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"aether/internal/logdev"
	"aether/internal/storage"
	"aether/internal/vfs"
)

// PartitionDir names partition i's log directory under a partitioned
// database root ("p0", "p1", …). Exported so tools (logdump) and tests
// agree with Open on the on-disk layout.
func PartitionDir(i int) string { return fmt.Sprintf("p%d", i) }

// checkMultiLayout rejects opening a directory whose on-disk layout does
// not match the requested partition count: a legacy single-log segmented
// directory (MANIFEST at the top level) must be opened with
// LogPartitions 0/1, and a database created with more partitions than
// requested would silently lose the extra logs' records.
func checkMultiLayout(fs vfs.FS, dir string, n int) error {
	if st, err := fs.Stat(filepath.Join(dir, "MANIFEST")); err == nil && !st.IsDir() {
		return fmt.Errorf("aether: %s holds a single-log segmented database; open it with LogPartitions 0 or 1", dir)
	}
	if st, err := fs.Stat(filepath.Join(dir, PartitionDir(n))); err == nil && st.IsDir() {
		return fmt.Errorf("aether: %s has more than the requested %d log partitions; open it with its original LogPartitions", dir, n)
	}
	return nil
}

// checkSingleLayout is the reverse guard: a partitioned database root
// (p0/ present) must not be opened in single-log mode, which would read
// none of the partition logs.
func checkSingleLayout(fs vfs.FS, dir string) error {
	if st, err := fs.Stat(filepath.Join(dir, PartitionDir(0))); err == nil && st.IsDir() {
		return fmt.Errorf("aether: %s holds a partitioned database; set Options.LogPartitions to its partition count", dir)
	}
	return nil
}

// openMulti is Open for Options.LogPartitions >= 2.
func openMulti(opts Options) (*DB, error) {
	n := opts.LogPartitions
	db := &DB{opts: opts}
	fs := opts.fsOrOS()
	closeDevs := func() {
		for _, d := range db.devs {
			d.Close()
		}
		if c, ok := db.archive.(io.Closer); ok && db.archive != nil {
			c.Close()
		}
	}
	switch {
	case opts.LogPath != "" && opts.SegmentSize > 0:
		if err := checkMultiLayout(fs, opts.LogPath, n); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			s, err := logdev.OpenSegmentedDirFS(fs, filepath.Join(opts.LogPath, PartitionDir(i)), opts.SegmentSize)
			if err != nil {
				closeDevs()
				return nil, fmt.Errorf("aether: log partition %d: %w", i, err)
			}
			db.devs = append(db.devs, s)
			db.segDevs = append(db.segDevs, s)
		}
		// One shared database file: pages are partition-agnostic — only
		// the log is sharded.
		arch, err := openPageArchive(fs,
			filepath.Join(opts.LogPath, "pagefile.db"),
			filepath.Join(opts.LogPath, "pages"))
		if err != nil {
			closeDevs()
			return nil, err
		}
		db.archive = arch
	case opts.LogPath != "":
		return nil, errors.New("aether: partitioned file-backed logs require Options.SegmentSize (each partition is a segmented directory)")
	case opts.SegmentSize > 0:
		for i := 0; i < n; i++ {
			s := logdev.NewSegmentedMem(opts.Device.internal(), opts.SegmentSize)
			db.devs = append(db.devs, s)
			db.segDevs = append(db.segDevs, s)
			db.memDevs = append(db.memDevs, s)
		}
		db.archive = storage.NewMemArchive()
	default:
		for i := 0; i < n; i++ {
			m := logdev.NewMem(opts.Device.internal())
			db.devs = append(db.devs, m)
			db.memDevs = append(db.memDevs, m)
		}
		db.archive = storage.NewMemArchive()
	}
	if opts.ArchiveDir != "" {
		// One cold-storage lane per partition: each partition's archiver
		// ships its own dead segments, so a slow lane never blocks the
		// others' truncation.
		for i, s := range db.segDevs {
			a, err := logdev.OpenDirArchiverFS(fs, filepath.Join(opts.ArchiveDir, PartitionDir(i)))
			if err != nil {
				closeDevs()
				return nil, fmt.Errorf("aether: archive lane %d: %w", i, err)
			}
			db.archivers = append(db.archivers, a)
			s.SetArchiver(a)
		}
	}
	if opts.RemoteStore != nil {
		// One key-prefix lane per partition in the shared object store:
		// p0/seg/…, p1/seg/…. Each partition's archiver ships and packs
		// its own lane, mirroring the per-partition ArchiveDir layout.
		for i, s := range db.segDevs {
			ra := logdev.NewRemoteArchiver(opts.RemoteStore, PartitionDir(i), opts.SegmentSize)
			db.archivers = append(db.archivers, ra)
			db.remotes = append(db.remotes, ra)
			s.SetArchiver(ra)
		}
	}
	if _, err := db.start(); err != nil {
		closeDevs()
		return nil, err
	}
	return db, nil
}
