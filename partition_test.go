package aether

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestPartitionedRoundTrip drives a 4-partition in-memory database with
// concurrent writers whose transactions deliberately touch pages homed
// on other partitions (cross-log dependency edges), crashes it, and
// checks that recovery — which verifies every record's PrevPageSeq edge
// while merging the logs — restores exactly the committed state.
func TestPartitionedRoundTrip(t *testing.T) {
	db, err := Open(Options{LogPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const tables = 4
	tbls := make([]*Table, tables)
	for i := range tbls {
		if tbls[i], err = db.CreateTable(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 4
	const perWorker = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			for k := 0; k < perWorker; k++ {
				key := uint64(w*perWorker + k + 1)
				tx := s.Begin()
				// First insert homes the transaction on table w's
				// partition; the second touches a different table whose
				// pages other workers (homed elsewhere) also update —
				// that is what manufactures cross-log page dependencies.
				if err := tx.Insert(tbls[w%tables], key, Row(key, []byte("home"))); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				other := tbls[(w+1)%tables]
				if err := tx.Insert(other, key+100000, Row(key+100000, []byte("away"))); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := db.Stats()
	if st.LogPartitions != 4 {
		t.Fatalf("LogPartitions = %d, want 4", st.LogPartitions)
	}
	if st.DepEdges == 0 {
		t.Fatalf("workload produced no cross-partition dependency edges; the test is not exercising A.5")
	}
	var parts int
	for _, b := range st.PartitionBytes {
		if b > 0 {
			parts++
		}
	}
	if parts < 2 {
		t.Fatalf("log bytes landed on %d partition(s), want >= 2 (routing broken?): %v", parts, st.PartitionBytes)
	}

	// Crash + recover: RecoverMulti errors out if any record's
	// PrevPageSeq edge was violated in the merged order, so a clean
	// Crash() is itself the zero-dependency-violations assertion.
	if err := db.Crash(); err != nil {
		t.Fatalf("crash recovery: %v", err)
	}
	s := db.Session()
	defer s.Close()
	tx := s.Begin()
	for w := 0; w < workers; w++ {
		tbl, err := db.LookupTable(fmt.Sprintf("t%d", w%tables))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < perWorker; k++ {
			key := uint64(w*perWorker + k + 1)
			if _, err := tx.Read(tbl, key); err != nil {
				t.Fatalf("committed row t%d/%d lost after crash: %v", w%tables, key, err)
			}
		}
	}
	tx.Commit()
}

// TestPartitionedFileBackedReopen writes through a 4-partition
// file-backed database, closes it, and reopens it — recovery must merge
// the partition logs by global seq and restore every committed row.
func TestPartitionedFileBackedReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{LogPath: dir, SegmentSize: 1 << 16, LogPartitions: 4}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbls := make([]*Table, 4)
	for i := range tbls {
		tbls[i], _ = db.CreateTable(fmt.Sprintf("t%d", i))
	}
	s := db.Session()
	for k := uint64(1); k <= 200; k++ {
		tx := s.Begin()
		if err := tx.Insert(tbls[k%4], k, Row(k, []byte("v"))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The partition layout is on disk now: p0..p3 plus the shared
	// pagefile.
	for i := 0; i < 4; i++ {
		if _, err := Open(Options{LogPath: dir, SegmentSize: 1 << 16}); err == nil {
			t.Fatal("opening a partitioned directory in single-log mode must fail")
		} else if !strings.Contains(err.Error(), "partitioned") {
			t.Fatalf("unhelpful layout error: %v", err)
		}
		break
	}
	if _, err := Open(Options{LogPath: dir, SegmentSize: 1 << 16, LogPartitions: 2}); err == nil {
		t.Fatal("opening a 4-partition directory with LogPartitions=2 must fail")
	}

	db, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := range tbls {
		if tbls[i], err = db.CreateTable(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	s = db.Session()
	defer s.Close()
	tx := s.Begin()
	for k := uint64(1); k <= 200; k++ {
		if _, err := tx.Read(tbls[k%4], k); err != nil {
			t.Fatalf("row %d lost across reopen: %v", k, err)
		}
	}
	tx.Commit()
}

// TestLegacyLayoutCompat pins the backward-compatibility contract:
// LogPartitions 0 and 1 take the identical single-log code path, the
// directory they produce is the legacy layout, and a legacy directory
// reopens unchanged — while opening it with LogPartitions >= 2 is
// refused rather than silently reinterpreted.
func TestLegacyLayoutCompat(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{LogPath: dir, SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t")
	s := db.Session()
	tx := s.Begin()
	if err := tx.Insert(tbl, 1, Row(1, []byte("legacy"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A legacy directory must not open partitioned.
	if _, err := Open(Options{LogPath: dir, SegmentSize: 1 << 16, LogPartitions: 4}); err == nil {
		t.Fatal("opening a legacy single-log directory with LogPartitions=4 must fail")
	} else if !strings.Contains(err.Error(), "single-log") {
		t.Fatalf("unhelpful layout error: %v", err)
	}

	// LogPartitions: 1 is the same engine — it must reopen the legacy
	// layout bit-for-bit (same MANIFEST, same segments) and read the
	// data back.
	db, err = Open(Options{LogPath: dir, SegmentSize: 1 << 16, LogPartitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if st := db.Stats(); st.LogPartitions != 0 {
		t.Fatalf("LogPartitions=1 must run the unpartitioned engine; Stats says %d", st.LogPartitions)
	}
	if db.eng.Multi() != nil {
		t.Fatal("LogPartitions=1 built a MultiLog")
	}
	if tbl, err = db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	s = db.Session()
	defer s.Close()
	tx = s.Begin()
	row, err := tx.Read(tbl, 1)
	if err != nil || string(RowPayload(row)) != "legacy" {
		t.Fatalf("legacy row: %q, %v", RowPayload(row), err)
	}
	tx.Commit()
}

// TestPartitionedRequiresSegments pins the config validation: a
// file-backed partitioned log without SegmentSize is an error, and the
// error mentions the missing option.
func TestPartitionedRequiresSegments(t *testing.T) {
	if _, err := Open(Options{LogPath: filepath.Join(t.TempDir(), "db"), LogPartitions: 2}); err == nil {
		t.Fatal("file-backed LogPartitions without SegmentSize must fail")
	} else if !strings.Contains(err.Error(), "SegmentSize") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestPartitionedCheckpointTruncation checks that checkpoints advance
// every partition's truncation horizon (bounded logs in multi mode).
func TestPartitionedCheckpointTruncation(t *testing.T) {
	db, err := Open(Options{SegmentSize: 1 << 14, LogPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	t0, _ := db.CreateTable("a")
	t1, _ := db.CreateTable("b")
	s := db.Session()
	defer s.Close()
	payload := make([]byte, 512)
	for round := 0; round < 6; round++ {
		for k := uint64(1); k <= 40; k++ {
			key := uint64(round*1000) + k
			tx := s.Begin()
			tbl := t0
			if k%2 == 0 {
				tbl = t1
			}
			if err := tx.Insert(tbl, key, Row(key, payload)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.LogBase == 0 {
		t.Fatalf("no partition truncated across 6 checkpoints: %+v", st.LogBase)
	}
}
