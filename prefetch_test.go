package aether

import (
	"path/filepath"
	"testing"
	"time"

	"aether/internal/storage"
)

// TestPrefetchAcrossReopen is PR 6's end-to-end scenario: a database
// reopened cold with a bounded cache and PrefetchDepth set streams its
// restart and scan faults — the rebuild walk and a full sequential read
// are served partly by read-ahead (Stats.PrefetchHits > 0), residency
// stays within the budget, and every row survives byte for byte.
func TestPrefetchAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	const budget = 8
	open := func(depth int) *DB {
		db, err := Open(Options{
			LogPath:       filepath.Join(dir, "wal"),
			CachePages:    budget,
			PrefetchDepth: depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := open(0)
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	const keys = 150 // ≈ 30 pages: ~4× the cache budget
	for k := uint64(1); k <= keys; k++ {
		tx := s.Begin()
		if err := tx.Insert(tbl, k, wideRow(k, k%113)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open(16)
	defer db2.Close()
	// Simulate a device with real read latency (as the scan benchmark
	// does): against an OS-cached local file, a demand pread can beat the
	// read-ahead goroutine's spawn — especially under the race detector —
	// and the test would measure scheduler jitter, not read-ahead.
	if pf, ok := db2.archive.(*storage.PageFile); ok {
		pf.SetReadDelay(200 * time.Microsecond)
	} else {
		t.Fatalf("page archive is %T, want *storage.PageFile", db2.archive)
	}
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	// The rebuild walk faults the whole table in page-ID order — exactly
	// the sequential pattern the read-ahead tracker exists for.
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	s2 := db2.Session()
	defer s2.Close()
	tx := s2.Begin()
	for k := uint64(1); k <= keys; k++ {
		got, err := tx.Read(tbl2, k)
		if err != nil {
			t.Fatalf("key %d lost across reopen: %v", k, err)
		}
		if v := got[len(got)-1]; uint64(v) != k%113 {
			t.Fatalf("key %d: value %d, want %d", k, v, k%113)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	st := db2.Stats()
	if st.PrefetchReads == 0 {
		t.Fatalf("read-ahead never ran across reopen + scan: %+v", st)
	}
	if st.PrefetchHits == 0 {
		t.Fatalf("no fault was served by a prefetched page: %+v", st)
	}
	if st.CacheResident > budget {
		t.Fatalf("resident %d exceeds budget %d with prefetch armed", st.CacheResident, budget)
	}
	t.Logf("reopen + scan: misses=%d prefetchReads=%d prefetchHits=%d readRetries=%d",
		st.PageMisses, st.PrefetchReads, st.PrefetchHits, st.ReadRetries)
}
