// restore.go is point-in-time recovery's public face: DB.RestoreTo
// reconstructs the committed state at an arbitrary historical position
// — a log offset for a single log, a global sequence stamp for a
// partitioned one; DB.RestorePoint captures such a position — by
// stitching the cloud tier's snapshot and log objects to the hot log
// and replaying (internal/recovery's PITR path). It also re-exports the
// cloud tier's ObjectStore so Options.RemoteStore is usable without
// reaching into internal packages.
package aether

import (
	"errors"
	"fmt"
	"sort"

	"aether/internal/logdev"
	"aether/internal/lsn"
	"aether/internal/recovery"
	"aether/internal/storage"
	"aether/internal/txn"
)

// ObjectStore is the S3-style object API the cloud log tier archives
// into (Options.RemoteStore): whole-object put/get/delete plus prefix
// listing. See NewMemObjectStore and NewDirObjectStore for the two
// bundled implementations.
type ObjectStore = logdev.ObjectStore

// MemObjectStore is an in-memory ObjectStore with an injectable
// network-failure model (latency, transient 5xx storms, torn uploads,
// outages) — the fault-testing "cloud".
type MemObjectStore = logdev.MemObjectStore

// NewMemObjectStore returns an empty in-memory object store (see
// MemObjectStore.Arm for the network-failure model).
func NewMemObjectStore() *MemObjectStore { return logdev.NewMemObjectStore() }

// NewDirObjectStore returns an ObjectStore backed by a directory of
// files: key "seg/000…042" becomes dir/seg/000…042, installed with
// tmp-write + rename + directory sync.
func NewDirObjectStore(dir string) (ObjectStore, error) { return logdev.NewDirObjectStore(dir) }

// ErrRestorePruned reports a RestoreTo target below the retention
// floor: the history needed to reconstruct it was pruned (it lay wholly
// below the oldest retained snapshot's cut). Stats.RestoreFloor is the
// oldest point that remains restorable.
var ErrRestorePruned = errors.New("aether: restore point below retention floor (history pruned)")

// RestorePoint returns the current durable position in RestoreTo's
// domain: the durable log offset for a single log, the global durable
// sequence stamp for a partitioned one. State committed (durably) by
// the time RestorePoint returns is reproduced by RestoreTo of the
// returned value.
func (db *DB) RestorePoint() int64 {
	if m := db.eng.Multi(); m != nil {
		return int64(m.Durable())
	}
	return int64(db.eng.Log().Durable())
}

// RestoredDB is a read-only reconstruction of the database's committed
// state at a historical position, returned by RestoreTo. It is
// decoupled from the live database: pages were replayed from the log
// into a private store.
type RestoredDB struct {
	store  *storage.Store
	spaces map[string]uint32
	at     int64
}

// At returns the position the state was restored to.
func (r *RestoredDB) At() int64 { return r.at }

// Scan visits the restored rows of a table in ascending key order,
// calling fn until it returns false. Keys follow the Row convention
// (first 8 bytes of the row). The table name must be one the live
// database had registered at RestoreTo time.
func (r *RestoredDB) Scan(table string, fn func(key uint64, row []byte) bool) error {
	space, ok := r.spaces[table]
	if !ok {
		return fmt.Errorf("aether: restored state has no table %q", table)
	}
	type kv struct {
		key uint64
		row []byte
	}
	var rows []kv
	for _, pid := range r.store.PageIDs() {
		if storage.PageSpace(pid) != space {
			continue
		}
		page, err := r.store.Get(pid)
		if err != nil {
			return err
		}
		for slot := 0; slot < page.NumSlots(); slot++ {
			row, err := page.Get(slot)
			if err != nil {
				continue // dead slot
			}
			rows = append(rows, kv{key: txn.DefaultKeyOf(row), row: row})
		}
		page.Unpin()
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].key < rows[b].key })
	for _, e := range rows {
		if !fn(e.key, e.row) {
			break
		}
	}
	return nil
}

// Get returns the restored row under key, or ErrKeyNotFound.
func (r *RestoredDB) Get(table string, key uint64) ([]byte, error) {
	var found []byte
	err := r.Scan(table, func(k uint64, row []byte) bool {
		if k == key {
			found = append([]byte(nil), row...)
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if found == nil {
		return nil, ErrKeyNotFound
	}
	return found, nil
}

// RestoreTo reconstructs the committed state at position at — a value
// previously captured with RestorePoint (a durable log offset for a
// single log, a global seq for a partitioned one). The restore replays
// history from the cloud tier (Options.RemoteStore) or local archive
// stitched to the hot log: with snapshots enabled, from the newest
// snapshot at or below at; otherwise from the beginning of time.
// Transactions without a durable commit at at are rolled back, so the
// result is exactly the committed state a crash at that instant would
// have recovered. Targets below the retention floor fail with
// ErrRestorePruned; targets beyond the durable end fail (the future is
// not restorable).
func (db *DB) RestoreTo(at int64) (*RestoredDB, error) {
	if at < 0 {
		return nil, fmt.Errorf("aether: RestoreTo(%d): negative position", at)
	}
	if durable := db.RestorePoint(); at > durable {
		return nil, fmt.Errorf("aether: RestoreTo(%d): beyond the durable end %d", at, durable)
	}
	spaces := make(map[string]uint32, len(db.tables))
	for _, name := range db.tables {
		if t := db.eng.Table(name); t != nil {
			spaces[name] = t.Space
		}
	}
	if len(db.devs) > 0 {
		return db.restoreMultiTo(at, spaces)
	}
	return db.restoreSingleTo(at, spaces)
}

// restoreSingleTo is RestoreTo for a single log: pick the newest
// snapshot at or below the target, stitch the raw log from its cut and
// replay.
func (db *DB) restoreSingleTo(at int64, spaces map[string]uint32) (*RestoredDB, error) {
	var snap *logdev.Snapshot
	var cut uint64
	if db.remote != nil {
		floor, err := db.remote.Floor()
		if err != nil {
			return nil, fmt.Errorf("aether: RestoreTo(%d): reading retention floor: %w", at, err)
		}
		if uint64(at) < floor {
			return nil, fmt.Errorf("%w: target %d, floor %d", ErrRestorePruned, at, floor)
		}
		s, ok, err := db.remote.NewestSnapshotAtOrBelow(uint64(at))
		if err != nil {
			return nil, fmt.Errorf("aether: RestoreTo(%d): loading snapshot: %w", at, err)
		}
		if ok {
			snap, cut = s, s.Cut
		}
	}
	data, start, err := db.RestoreTail(int64(cut))
	if err != nil {
		return nil, err
	}
	if uint64(start) > cut {
		return nil, fmt.Errorf("aether: RestoreTo(%d): log history reaches back to %d, need %d (archive incomplete)", at, start, cut)
	}
	data = data[cut-uint64(start):]
	if uint64(at) > cut+uint64(len(data)) {
		return nil, fmt.Errorf("aether: RestoreTo(%d): restored log ends at %d", at, cut+uint64(len(data)))
	}
	store, err := recovery.ReplayToPoint(snap, data, cut, uint64(at))
	if err != nil {
		return nil, fmt.Errorf("aether: RestoreTo(%d): %w", at, err)
	}
	return &RestoredDB{store: store, spaces: spaces, at: at}, nil
}

// restoreMultiTo is RestoreTo for a partitioned log: restore every
// lane's full history (the cloud tier keeps partitioned history whole
// — see Options.SnapshotEveryBytes), then merge by global seq, ignoring
// records stamped after the target.
func (db *DB) restoreMultiTo(at int64, spaces map[string]uint32) (*RestoredDB, error) {
	logs := make([][]byte, len(db.segDevs))
	bases := make([]lsn.LSN, len(db.segDevs))
	for i, sd := range db.segDevs {
		var arch logdev.Archiver
		if len(db.archivers) > i {
			arch = db.archivers[i]
		}
		data, start, err := sd.RestoreLog(arch, 0)
		if err != nil {
			return nil, fmt.Errorf("aether: RestoreTo(%d): partition %d: %w", at, i, err)
		}
		if start > 0 {
			return nil, fmt.Errorf("aether: RestoreTo(%d): partition %d history reaches back to %d, need 0 (archive incomplete)", at, i, start)
		}
		logs[i], bases[i] = data, lsn.LSN(start)
	}
	store, err := recovery.ReplayMultiToSeq(logs, bases, uint64(at))
	if err != nil {
		return nil, fmt.Errorf("aether: RestoreTo(%d): %w", at, err)
	}
	return &RestoredDB{store: store, spaces: spaces, at: at}, nil
}

// retentionConfig assembles the engine's cloud-tier maintenance
// configuration from the attached remote archivers (empty when the
// database has no remote store).
func (db *DB) retentionConfig() txn.RetentionConfig {
	var cfg txn.RetentionConfig
	if db.remote != nil {
		cfg.Lanes = []txn.RetentionLane{{Dev: db.segDev, Remote: db.remote}}
		cfg.SnapshotEveryBytes = db.opts.SnapshotEveryBytes
		cfg.RetainSnapshots = db.opts.RetainSnapshots
	}
	for i, r := range db.remotes {
		cfg.Lanes = append(cfg.Lanes, txn.RetentionLane{Dev: db.segDevs[i], Remote: r})
	}
	cfg.CompactSegments = db.opts.CompactSegments
	return cfg
}
