package aether

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"aether/internal/logdev"
)

// restoreModel tracks the expected committed state at each captured
// restore point.
type restoreModel map[uint64][]byte

func (m restoreModel) clone() restoreModel {
	c := make(restoreModel, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// restoredState scans a table of a RestoredDB into a map.
func restoredState(t *testing.T, r *RestoredDB, table string) restoreModel {
	t.Helper()
	got := make(restoreModel)
	if err := r.Scan(table, func(key uint64, row []byte) bool {
		got[key] = append([]byte(nil), RowPayload(row)...)
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return got
}

func diffModel(want, got restoreModel) string {
	for k, v := range want {
		g, ok := got[k]
		if !ok {
			return fmt.Sprintf("key %d missing (want %q)", k, v)
		}
		if !bytes.Equal(v, g) {
			return fmt.Sprintf("key %d: want %q, got %q", k, v, g)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Sprintf("key %d unexpected (%q)", k, got[k])
		}
	}
	return ""
}

// TestRestoreToSingle drives a single segmented log archiving into a
// fault-injecting object store — transient 5xx storms and a torn
// upload throughout — captures a restore point after every batch, and
// checks RestoreTo reproduces the exact committed state at each one,
// including points where an uncommitted transaction straddled the
// capture (its updates must be rolled back in the restored state).
func TestRestoreToSingle(t *testing.T) {
	store := NewMemObjectStore()
	db, err := Open(Options{
		SegmentSize:        4096,
		RemoteStore:        store,
		CompactSegments:    2,
		SnapshotEveryBytes: 8192,
		Mode:               CommitSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	s := db.Session()
	defer s.Close()
	model := make(restoreModel)
	type point struct {
		at   int64
		want restoreModel
	}
	var points []point

	const batches = 12
	for b := 0; b < batches; b++ {
		// A transient 5xx storm on the upload path every other batch:
		// the archiver's backoff must ride it out with zero loss.
		if b%2 == 0 {
			store.Arm(logdev.NetFault{FailPuts: 2})
		}
		for i := 0; i < 10; i++ {
			key := uint64(b*10 + i)
			val := []byte(fmt.Sprintf("b%02d-i%02d", b, i))
			tx := s.Begin()
			if key%7 == 3 && b > 0 {
				// Rewrite an older key now and then.
				old := uint64(b*10+i) % uint64(b*10)
				if _, ok := model[old]; ok {
					if err := tx.Update(tbl, old, func([]byte) ([]byte, error) {
						return Row(old, val), nil
					}); err != nil {
						t.Fatal(err)
					}
					model[old] = val
				}
			}
			if err := tx.Insert(tbl, key, Row(key, val)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			model[key] = val
		}
		if b == 7 {
			// Leave a transaction in flight across the capture: its
			// durable updates must be undone by the restore.
			straddler := s.db.Session()
			tx := straddler.Begin()
			if err := tx.Update(tbl, uint64(b*10), func([]byte) ([]byte, error) {
				return Row(uint64(b*10), []byte("uncommitted")), nil
			}); err != nil {
				t.Fatal(err)
			}
			// Harden the straddler's update without committing it: a
			// later commit on another session flushes the shared log.
			tx2 := s.Begin()
			if err := tx2.Insert(tbl, 9990, Row(9990, []byte("flusher"))); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			model[9990] = []byte("flusher")
			points = append(points, point{at: db.RestorePoint(), want: model.clone()})
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			model[uint64(b*10)] = []byte("uncommitted")
			straddler.Close()
		} else {
			points = append(points, point{at: db.RestorePoint(), want: model.clone()})
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the very next upload mid-object: the store keeps a truncated
	// prefix, the archiver must detect it and re-ship. Drive batches
	// until the tear actually fires (uploads are asynchronous).
	store.Arm(logdev.NetFault{TearPutAfter: 1})
	deadline := time.Now().Add(20 * time.Second)
	for b := batches; store.Stats().TornPuts == 0; b++ {
		if time.Now().After(deadline) {
			t.Fatalf("no upload torn: %+v", store.Stats())
		}
		for i := 0; i < 10; i++ {
			key := uint64(b*10 + i)
			val := []byte(fmt.Sprintf("b%02d-i%02d", b, i))
			tx := s.Begin()
			if err := tx.Insert(tbl, key, Row(key, val)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			model[key] = val
		}
		points = append(points, point{at: db.RestorePoint(), want: model.clone()})
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	store.Arm(logdev.NetFault{})

	for i, p := range points {
		r, err := db.RestoreTo(p.at)
		if err != nil {
			t.Fatalf("RestoreTo(point %d @ %d): %v", i, p.at, err)
		}
		if d := diffModel(p.want, restoredState(t, r, "t")); d != "" {
			t.Fatalf("point %d @ %d: %s", i, p.at, d)
		}
	}

	// The faults healed: nothing may stay parked forever.
	waitDrain := time.Now().Add(10 * time.Second)
	for db.Stats().LogSegmentsPendingArchive > 0 {
		if time.Now().After(waitDrain) {
			t.Fatalf("segments stuck pending after faults healed: %+v", db.Stats())
		}
		_ = db.Checkpoint()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRestoreToPartitioned is the same round-trip on a 4-partition log:
// per-partition lanes in the shared object store, restore merged by
// global seq — closing RestoreTail's partitioned-log gap.
func TestRestoreToPartitioned(t *testing.T) {
	store := NewMemObjectStore()
	db, err := Open(Options{
		SegmentSize:     4096,
		LogPartitions:   4,
		RoutePartition:  func(txnID uint64, _ uint32) int { return int(txnID % 4) },
		RemoteStore:     store,
		CompactSegments: 2,
		Mode:            CommitSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	s := db.Session()
	defer s.Close()
	model := make(restoreModel)
	type point struct {
		at   int64
		want restoreModel
	}
	var points []point

	for b := 0; b < 10; b++ {
		if b%3 == 0 {
			store.Arm(logdev.NetFault{FailPuts: 2})
		}
		for i := 0; i < 10; i++ {
			key := uint64(b*10 + i)
			val := []byte(fmt.Sprintf("p%02d-%02d", b, i))
			tx := s.Begin()
			if err := tx.Insert(tbl, key, Row(key, val)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			model[key] = val
		}
		points = append(points, point{at: db.RestorePoint(), want: model.clone()})
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	store.Arm(logdev.NetFault{})

	for i, p := range points {
		r, err := db.RestoreTo(p.at)
		if err != nil {
			t.Fatalf("RestoreTo(point %d @ seq %d): %v", i, p.at, err)
		}
		if d := diffModel(p.want, restoredState(t, r, "t")); d != "" {
			t.Fatalf("point %d @ seq %d: %s", i, p.at, d)
		}
	}
}

// TestRetentionFloorProperty is the retention invariant: pruning never
// reaches the oldest restorable point. Once retention has pruned,
// RestoreTo at the exact floor succeeds and one LSN below fails with
// the typed error — and every captured point at or above the floor
// still round-trips.
func TestRetentionFloorProperty(t *testing.T) {
	store := NewMemObjectStore()
	db, err := Open(Options{
		SegmentSize:        4096,
		RemoteStore:        store,
		CompactSegments:    2,
		SnapshotEveryBytes: 4096,
		RetainSnapshots:    2,
		Mode:               CommitSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	s := db.Session()
	defer s.Close()
	model := make(restoreModel)
	type point struct {
		at   int64
		want restoreModel
	}
	var points []point

	deadline := time.Now().Add(30 * time.Second)
	var key uint64
	for db.Stats().LogObjectsPruned == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("retention never pruned: %+v", db.Stats())
		}
		for i := 0; i < 10; i++ {
			key++
			val := []byte(fmt.Sprintf("v%05d", key))
			tx := s.Begin()
			if err := tx.Insert(tbl, key, Row(key, val)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			model[key] = val
		}
		points = append(points, point{at: db.RestorePoint(), want: model.clone()})
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	// Let the in-flight maintenance pass settle, then read the floor.
	var floor int64
	for i := 0; i < 100; i++ {
		floor = db.Stats().RestoreFloor
		if floor > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if floor <= 0 {
		t.Fatalf("objects pruned but floor still 0: %+v", db.Stats())
	}

	// Exactly at the floor: must succeed.
	if _, err := db.RestoreTo(floor); err != nil {
		t.Fatalf("RestoreTo(floor %d): %v", floor, err)
	}
	// One below: typed error.
	if _, err := db.RestoreTo(floor - 1); !errors.Is(err, ErrRestorePruned) {
		t.Fatalf("RestoreTo(floor-1) = %v, want ErrRestorePruned", err)
	}
	// Every captured point at or above the floor still round-trips.
	checked := 0
	for i, p := range points {
		if p.at < floor {
			continue
		}
		r, err := db.RestoreTo(p.at)
		if err != nil {
			t.Fatalf("RestoreTo(point %d @ %d, floor %d): %v", i, p.at, floor, err)
		}
		if d := diffModel(p.want, restoredState(t, r, "t")); d != "" {
			t.Fatalf("point %d @ %d: %s", i, p.at, d)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no captured point at or above the floor; test drove too little history")
	}
}
