package aether

import (
	"aether/internal/txn"
)

// Session is a per-goroutine handle for running transactions — the
// paper's "agent thread". It carries the agent's log appender and its
// inherited-lock cache, so it must not be shared across goroutines.
type Session struct {
	db *DB
	ag *txn.Agent
}

// Session returns a new session. One per worker goroutine.
func (db *DB) Session() *Session {
	return &Session{db: db, ag: db.eng.NewAgent()}
}

// Close releases the session's inherited locks.
func (s *Session) Close() { s.ag.Close() }

// Begin starts a transaction using the database's default commit mode.
func (s *Session) Begin() *Tx {
	return &Tx{s: s, tx: s.ag.Begin(), mode: s.db.opts.Mode}
}

// Tx is one transaction.
type Tx struct {
	s    *Session
	tx   *txn.Txn
	mode CommitMode
}

// SetCommitMode overrides the commit protocol for this transaction.
func (t *Tx) SetCommitMode(m CommitMode) { t.mode = m }

// Insert adds a row under key. Use Row to build rows with the key
// prefix the index rebuild expects.
func (t *Tx) Insert(table *Table, key uint64, row []byte) error {
	return t.tx.Insert(table.t, key, row)
}

// Read returns the row under key (shared-locked).
func (t *Tx) Read(table *Table, key uint64) ([]byte, error) {
	return t.tx.Read(table.t, key)
}

// Update rewrites the row under key via fn (exclusive-locked
// read-modify-write).
func (t *Tx) Update(table *Table, key uint64, fn func(row []byte) ([]byte, error)) error {
	return t.tx.Update(table.t, key, fn)
}

// Delete removes the row under key.
func (t *Tx) Delete(table *Table, key uint64) error {
	return t.tx.Delete(table.t, key)
}

// Scan visits rows with keys in [from, to] in key order, calling fn
// until it returns false. The scan takes a table-level shared lock
// (coarse-grained; it blocks concurrent writers for its duration).
func (t *Tx) Scan(table *Table, from, to uint64, fn func(key uint64, row []byte) bool) error {
	return t.tx.Scan(table.t, from, to, fn)
}

// Commit finishes the transaction under its commit mode and blocks
// until the commit's outcome is decided for the client (durable for
// safe modes; immediately for CommitAsync). For fire-and-forget
// pipelined commits use CommitAsyncAck.
func (t *Tx) Commit() error {
	mode := t.mode.internal()
	switch mode {
	case txn.CommitPipelined:
		// Block the caller until the daemon hardens the commit — the
		// client-facing behavior is unchanged; the win is that agent
		// threads using CommitAsyncAck need not block.
		ch := make(chan error, 1)
		if err := t.tx.Commit(mode, func(err error) { ch <- err }); err != nil {
			return err
		}
		return <-ch
	default:
		return t.tx.Commit(mode, nil)
	}
}

// CommitAsyncAck finishes the transaction without blocking: ack runs
// (on the log daemon's goroutine) once the commit is durable. This is
// flush pipelining's detach — the session can immediately Begin the
// next transaction. ack may be nil.
func (t *Tx) CommitAsyncAck(ack func(error)) error {
	return t.tx.Commit(t.mode.internal(), ack)
}

// Abort rolls the transaction back.
func (t *Tx) Abort() error { return t.tx.Abort() }

// Errors re-exported for callers.
var (
	ErrDuplicateKey = txn.ErrDuplicateKey
	ErrKeyNotFound  = txn.ErrKeyNotFound
	ErrTxnDone      = txn.ErrTxnDone
	ErrPrecommitted = txn.ErrPrecommitted
)
