package aether

import (
	"path/filepath"
	"testing"
)

// writeRows commits each key in [from, to) in its own transaction with a
// payload large enough to push the log through segments quickly.
func writeRows(t *testing.T, db *DB, tbl *Table, from, to uint64) {
	t.Helper()
	s := db.Session()
	defer s.Close()
	payload := make([]byte, 256)
	for k := from; k < to; k++ {
		tx := s.Begin()
		if err := tx.Insert(tbl, k, Row(k, payload)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", k, err)
		}
	}
}

func verifyRows(t *testing.T, db *DB, tbl *Table, from, to uint64) {
	t.Helper()
	s := db.Session()
	defer s.Close()
	tx := s.Begin()
	for k := from; k < to; k++ {
		if _, err := tx.Read(tbl, k); err != nil {
			t.Fatalf("read %d after recovery: %v", k, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTruncatesAndRecoveryReadsOnlyTail is the tentpole's
// acceptance test on the in-memory segmented device: a workload that
// writes several segments, a checkpoint that recycles the dead prefix,
// more traffic, a crash — and a recovery that reads only bytes at or
// above the truncation base.
func TestCheckpointTruncatesAndRecoveryReadsOnlyTail(t *testing.T) {
	const segSize = 16 << 10
	db, err := Open(Options{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	// Enough traffic for ≥ 4 segments (each row logs ~300B).
	writeRows(t, db, tbl, 1, 300)
	if got := db.Stats().LogBytes; got < 4*segSize {
		t.Fatalf("workload only logged %d bytes, want ≥ 4 segments (%d)", got, 4*segSize)
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.LogTruncations == 0 || st.LogBase == 0 {
		t.Fatalf("checkpoint did not truncate: %+v", st)
	}
	if st.LogSegmentsRecycled < 4 {
		t.Fatalf("only %d segments recycled, want ≥ 4", st.LogSegmentsRecycled)
	}
	if st.LogTruncatedBytes < 4*segSize {
		t.Fatalf("only %d bytes truncated, want ≥ %d", st.LogTruncatedBytes, 4*segSize)
	}

	// Post-truncation traffic, then a crash.
	writeRows(t, db, tbl, 300, 400)
	base := db.Stats().LogBase
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	tbl, err = db.LookupTable("t")
	if err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db, tbl, 1, 400)

	// The device itself proves recovery never touched the dead prefix.
	if low := db.segDev.LowestRead(); low < base {
		t.Fatalf("recovery read offset %d, below truncation base %d", low, base)
	}
}

// TestFileBackedSegmentedRecovery reopens a directory-backed database
// whose dead segments were recycled and checks every committed row
// survives — the process-restart variant of the crash test.
func TestFileBackedSegmentedRecovery(t *testing.T) {
	const segSize = 16 << 10
	dir := filepath.Join(t.TempDir(), "wal.d")
	db, err := Open(Options{LogPath: dir, SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, db, tbl, 1, 300)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.LogSegmentsRecycled < 4 {
		t.Fatalf("only %d segments recycled, want ≥ 4", st.LogSegmentsRecycled)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	liveBytes := int64(0)
	for range files {
		liveBytes += segSize
	}
	if liveBytes >= st.LogBytes {
		t.Fatalf("no disk space reclaimed: %d live segment bytes vs %d logged", liveBytes, st.LogBytes)
	}
	writeRows(t, db, tbl, 300, 350)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Double Close stays safe (the device is closed too, exactly once).
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// A plain reopen must find everything: the segmented log's dead
	// prefix only exists as page images in the on-disk archive, and
	// Open wires that archive up automatically.
	db2, err := Open(Options{LogPath: dir, SegmentSize: segSize})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { db2.Close() })
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db2, tbl2, 1, 350)
	if base := db2.Stats().LogBase; base == 0 {
		t.Fatal("reopened database lost its truncation base")
	}
}

func TestTruncationHorizonRespectsActiveTxns(t *testing.T) {
	const segSize = 8 << 10
	db, err := Open(Options{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	// An old transaction stays open across heavy traffic and a
	// checkpoint; its undo chain pins the horizon.
	sOld := db.Session()
	defer sOld.Close()
	txOld := sOld.Begin()
	if err := txOld.Insert(tbl, 999999, Row(999999, []byte("old"))); err != nil {
		t.Fatal(err)
	}
	writeRows(t, db, tbl, 1, 200)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.LogTruncatedBytes > st.LogBytes {
		t.Fatalf("truncated more than was logged: %+v", st)
	}
	// The old transaction must still be able to roll back.
	if err := txOld.Abort(); err != nil {
		t.Fatalf("abort after checkpoint truncation: %v", err)
	}
	// And after a crash, its key must be gone while the others survive.
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	tbl, err = db.LookupTable("t")
	if err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db, tbl, 1, 200)
	s2 := db.Session()
	defer s2.Close()
	tx := s2.Begin()
	if _, err := tx.Read(tbl, 999999); err == nil {
		t.Fatal("aborted transaction's row survived recovery")
	}
	tx.Commit()
}

// TestFileBackedReopenAfterCheckpointCleansDPT is the regression test
// for the archive-volatility bug: a checkpoint removes archived pages
// from the DPT, so a later checkpoint's DPT snapshot no longer covers
// them and reopen-redo skips their log records — their only copy is the
// archive, which therefore must survive the process even for a plain
// (non-segmented) file-backed log.
func TestFileBackedReopenAfterCheckpointCleansDPT(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	db, err := Open(Options{LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	writeRows(t, db, tbl, 1, 50) // dirties pages
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err) // archives them and cleans the DPT
	}
	writeRows(t, db, tbl, 50, 60) // unrelated later traffic
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err) // snapshot DPT no longer mentions the early pages
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RebuildAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	verifyRows(t, db2, tbl2, 1, 60)
}
